package deploy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"autonetkit/internal/emul"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/retry"
)

// Counter names maintained by pool deployments.
const (
	CounterBootRetries = "deploy_boot_retries"
	CounterHostsFailed = "deploy_hosts_failed"
	CounterVMsReplaced = "deploy_vms_replaced"
)

// BootFunc launches one emulation host's share of the lab. attempt is
// 1-based. The production hosts here are in-process and always come up;
// the hook exists so tests and chaos experiments can model flaky hardware
// (transient boot failures, hangs) — the §3.3 StarBed deployments met
// plenty of both.
type BootFunc func(host string, vms []string, attempt int) error

// PoolOptions configures a multi-host deployment.
type PoolOptions struct {
	Platform string
	// MaxBGPRounds bounds control-plane convergence (0 = default).
	MaxBGPRounds int
	// Lenient boots in lenient mode: devices with config error
	// diagnostics are quarantined instead of failing the launch, and
	// RunPool returns the usable deployment alongside an error wrapping
	// emul.ErrPartialBoot.
	Lenient bool
	// Retry governs per-host boot attempts. Its AttemptTimeout also bounds
	// the lab's control-plane convergence runs, so a hung convergence
	// cannot stall the pool any more than a hung host boot can.
	Retry retry.Policy
	// Supervise runs the convergence watchdog over the launched lab,
	// emitting one "watchdog" event per escalation rung.
	Supervise bool
	// Boot, when set, is invoked per host boot attempt (fault-injection
	// seam; nil always succeeds).
	Boot BootFunc
	// OnEvent, when set, receives progress events as they happen.
	OnEvent func(Event)
	// Obs, when set, collects deployment spans and counters.
	Obs *obs.Collector
}

// PoolDeployment is the outcome of RunPool: the running lab, where every
// VM ended up, and which hosts were abandoned along the way.
type PoolDeployment struct {
	Platform  string
	Placement Placement
	// FailedHosts lists hosts that exhausted their boot attempts, in
	// failure order.
	FailedHosts []string
	// StrandedVMs lists VMs that could not be re-placed after their host
	// failed (only non-empty when RunPool also returns ErrDegraded).
	StrandedVMs []string
	events      []Event
	lab         *emul.Lab
	onEvent     func(Event)
}

// Lab returns the running lab (nil when the deployment degraded before
// launch).
func (d *PoolDeployment) Lab() *emul.Lab { return d.lab }

// Events returns all progress events so far.
func (d *PoolDeployment) Events() []Event {
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}

func (d *PoolDeployment) emit(ev Event) {
	d.events = append(d.events, ev)
	if d.onEvent != nil {
		d.onEvent(ev)
	}
}

// ErrDegraded is returned (wrapped) by RunPool when surviving capacity
// could not absorb a failed host's VMs: the deployment terminated
// gracefully — events and placement intact — instead of hanging or
// launching a partial lab.
var ErrDegraded = fmt.Errorf("deploy: degraded: insufficient surviving capacity")

// RunPool deploys a rendered lab across an emulation host pool: archive →
// transfer → extract → place VMs onto hosts → boot each host (with retry,
// backoff + jitter, and per-attempt timeouts) → launch. A host that
// exhausts its boot attempts is abandoned and its VMs are re-placed onto
// the surviving hosts' spare capacity; if none remains, RunPool returns
// the partial deployment state wrapped in ErrDegraded. Every stage emits
// deploy Events and (when opts.Obs is set) obs spans/counters.
func RunPool(fs *render.FileSet, pool *HostPool, opts PoolOptions) (*PoolDeployment, error) {
	return RunPoolContext(context.Background(), fs, pool, opts)
}

// RunPoolContext is RunPool under a context: cancellation aborts the
// deployment between stages and interrupts backoff sleeps and in-flight
// boot attempts, returning the partial deployment state with the context's
// error. A cancelled boot attempt does not count against its host — the
// caller gave up, the host didn't fail.
func RunPoolContext(ctx context.Context, fs *render.FileSet, pool *HostPool, opts PoolOptions) (*PoolDeployment, error) {
	if opts.Platform == "" {
		opts.Platform = "netkit"
	}
	span := opts.Obs.StartSpan("PoolDeploy")
	defer span.End()
	d := &PoolDeployment{Platform: opts.Platform, onEvent: opts.OnEvent}

	bundle, err := Archive(fs)
	if err != nil {
		return nil, err
	}
	d.emit(Event{"archive", fmt.Sprintf("%d files, %d bytes compressed", fs.Len(), len(bundle))})
	received := make([]byte, len(bundle))
	copy(received, bundle)
	d.emit(Event{"transfer", fmt.Sprintf("%d bytes to %d hosts", len(received), len(pool.Hosts()))})
	extracted, err := Extract(received)
	if err != nil {
		return nil, err
	}
	d.emit(Event{"extract", fmt.Sprintf("%d files", extracted.Len())})

	// The rendered tree is keyed by design-time host; pool deployment
	// re-homes the single lab across physical hosts.
	lab, err := firstLab(extracted, opts.Platform)
	if err != nil {
		return nil, err
	}

	placement, err := pool.Place(lab.VMNames())
	if err != nil {
		return nil, err
	}
	d.Placement = placement
	d.emit(Event{"place", fmt.Sprintf("%d VMs across %d hosts", len(placement), len(pool.Hosts()))})

	// Boot every host that holds VMs, in deterministic order.
	pending := make([]*Host, 0, len(pool.Hosts()))
	for _, h := range pool.Hosts() {
		if len(h.Assigned()) > 0 {
			pending = append(pending, h)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Name < pending[j].Name })
	for len(pending) > 0 {
		h := pending[0]
		pending = pending[1:]
		err := d.bootHost(ctx, h, opts)
		if err == nil {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			d.emit(Event{"abort", fmt.Sprintf("deployment cancelled while booting %s: %v", h.Name, cerr)})
			return d, fmt.Errorf("deploy: cancelled: %w", cerr)
		}
		// Host is gone: abandon it and re-place its VMs onto survivors.
		opts.Obs.Add(CounterHostsFailed, 1)
		d.FailedHosts = append(d.FailedHosts, h.Name)
		orphans, ferr := pool.Fail(h.Name)
		if ferr != nil {
			return d, ferr
		}
		d.emit(Event{"host-failed", fmt.Sprintf("%s abandoned after %d attempts; re-placing %d VMs", h.Name, opts.Retry.Attempts(), len(orphans))})
		replaced, perr := pool.Place(orphans)
		if perr != nil {
			d.StrandedVMs = orphans
			d.emit(Event{"degraded", fmt.Sprintf("cannot re-place %d VMs (%s): %v", len(orphans), strings.Join(orphans, ", "), perr)})
			return d, fmt.Errorf("%w: %d VMs stranded after %s failed", ErrDegraded, len(orphans), h.Name)
		}
		opts.Obs.Add(CounterVMsReplaced, int64(len(replaced)))
		for _, vm := range sortedKeys(replaced) {
			d.Placement[vm] = replaced[vm]
			d.emit(Event{"replace", fmt.Sprintf("%s re-placed onto %s", vm, replaced[vm])})
		}
		// Any not-yet-booted host that received orphans is still in
		// pending and boots with its enlarged share; already-booted hosts
		// absorb them without a re-boot.
	}

	d.emit(Event{"lstart", fmt.Sprintf("launching %d machines", len(lab.VMNames()))})
	lspan := opts.Obs.StartSpan("Launch")
	err = lab.Boot(emul.BootOptions{
		MaxBGPRounds:    opts.MaxBGPRounds,
		ConvergeTimeout: opts.Retry.AttemptTimeout,
		Lenient:         opts.Lenient,
	})
	lspan.End()
	if err != nil && !errors.Is(err, emul.ErrPartialBoot) {
		return d, err
	}
	for _, ev := range lab.Events() {
		d.emit(Event{"machine", ev})
	}
	d.lab = lab
	if opts.Supervise {
		if serr := superviseBoot(lab, opts.Obs, d.emit); serr != nil {
			return d, serr
		}
	}
	if err != nil {
		q := lab.Quarantined()
		opts.Obs.Add(obs.CounterDevicesQuarantined, int64(len(q)))
		d.emit(Event{"quarantine", fmt.Sprintf("%d machines quarantined (%s)", len(q), strings.Join(q, ", "))})
		d.emit(Event{"done", "lab running (partial)"})
		return d, err
	}
	d.emit(Event{"done", "lab running"})
	return d, nil
}

// bootHost attempts one host's boot under the retry policy (attempt
// loop, backoff, and the circuit breaker — when the policy carries one —
// all live in retry.Policy.Do), emitting an event per attempt. Context
// cancellation interrupts the backoff sleep and surfaces as the returned
// error.
func (d *PoolDeployment) bootHost(ctx context.Context, h *Host, opts PoolOptions) error {
	span := opts.Obs.StartSpan("boot " + h.Name)
	defer span.End()
	pol := opts.Retry
	pol.OnRetry = func(host string, attempt int, err error) {
		d.emit(Event{"retry", fmt.Sprintf("%s boot attempt %d failed: %v", host, attempt, err)})
		opts.Obs.Add(CounterBootRetries, 1)
	}
	return pol.Do(ctx, h.Name, func(attempt int) error {
		err := attemptBoot(ctx, opts.Boot, h.Name, h.Assigned(), attempt, pol)
		if err == nil {
			d.emit(Event{"boot", fmt.Sprintf("%s up (%d VMs, attempt %d)", h.Name, len(h.Assigned()), attempt)})
		}
		return err
	})
}

// attemptBoot runs one boot attempt under the per-attempt timeout. A
// timed-out attempt counts as failed; the stray goroutine's eventual
// result is discarded (buffered channel), so a wedged host cannot hang the
// deployment. Context cancellation abandons the attempt the same way.
func attemptBoot(ctx context.Context, boot BootFunc, host string, vms []string, attempt int, pol retry.Policy) error {
	if boot == nil {
		return nil
	}
	if pol.AttemptTimeout <= 0 && ctx.Done() == nil {
		return boot(host, vms, attempt)
	}
	ch := make(chan error, 1)
	go func() { ch <- boot(host, vms, attempt) }()
	var timeout <-chan time.Time
	if pol.AttemptTimeout > 0 {
		timeout = pol.AfterChan(pol.AttemptTimeout)
	}
	select {
	case err := <-ch:
		return err
	case <-timeout:
		return fmt.Errorf("deploy: boot of %s attempt %d timed out after %v", host, attempt, pol.AttemptTimeout)
	case <-ctx.Done():
		return fmt.Errorf("deploy: boot of %s attempt %d cancelled: %w", host, attempt, ctx.Err())
	}
}

// firstLab loads the lab for the (sole) design-time host under the given
// platform from an extracted tree.
func firstLab(fs *render.FileSet, platform string) (*emul.Lab, error) {
	hosts := map[string]bool{}
	var order []string
	for _, p := range fs.SortedPaths() {
		host, rest, ok := strings.Cut(p, "/")
		if !ok {
			continue
		}
		if plat, _, ok := strings.Cut(rest, "/"); ok && plat == platform {
			if !hosts[host] {
				hosts[host] = true
				order = append(order, host)
			}
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("deploy: no %s lab in rendered tree", platform)
	}
	return emul.Load(fs, order[0], platform)
}

func sortedKeys(p Placement) []string {
	out := make([]string, 0, len(p))
	for k := range p {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
