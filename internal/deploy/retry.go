package deploy

import "autonetkit/internal/retry"

// RetryPolicy governs per-host boot attempts in a pool deployment:
// exponential backoff with deterministic jitter and a per-attempt timeout.
// It is the shared retry.Policy (the cluster scheduler reuses the same
// policy for live re-placement during drains); the zero value selects the
// defaults.
type RetryPolicy = retry.Policy
