package deploy

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestPlaceTieBreakStableNameOrder pins the documented tie-break: hosts
// with equal capacity fill in ascending name order no matter what order
// the pool was constructed in (i.e. immune to any map iteration order a
// caller might build the host list from).
func TestPlaceTieBreakStableNameOrder(t *testing.T) {
	vms := []string{"r3", "r1", "r2", "r4"}
	var want Placement
	for perm := 0; perm < 6; perm++ {
		hosts := []*Host{
			{Name: "hb", Capacity: 2},
			{Name: "ha", Capacity: 2},
			{Name: "hc", Capacity: 2},
		}
		// Rotate the construction order each round.
		for i := 0; i < perm%3; i++ {
			hosts = append(hosts[1:], hosts[0])
		}
		pool, err := NewHostPool(hosts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.Place(vms)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			// Name-smallest host fills first: r1, r2 on ha; r3, r4 on hb.
			if got["r1"] != "ha" || got["r2"] != "ha" || got["r3"] != "hb" || got["r4"] != "hb" {
				t.Fatalf("tie-break not name-ordered: %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("construction order %d changed placement: %v vs %v", perm, got, want)
		}
	}
}

// TestFailEmitsSortedOrphans pins the Fail satellite: a structured
// host-failed event and orphans returned sorted regardless of placement
// order.
func TestFailEmitsSortedOrphans(t *testing.T) {
	pool, err := NewHostPool(&Host{Name: "h1", Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	pool.SetOnEvent(func(ev Event) { events = append(events, ev) })
	if _, err := pool.Place([]string{"zeta", "alpha", "mid"}); err != nil {
		t.Fatal(err)
	}
	orphans, err := pool.Fail("h1")
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(orphans) {
		t.Fatalf("orphans not sorted: %v", orphans)
	}
	if len(orphans) != 3 || orphans[0] != "alpha" {
		t.Fatalf("orphans = %v", orphans)
	}
	if len(events) != 1 || events[0].Stage != "host-failed" {
		t.Fatalf("events = %v", events)
	}
	if !strings.Contains(events[0].Detail, "alpha, mid, zeta") {
		t.Fatalf("event detail not in sorted order: %q", events[0].Detail)
	}
	if got := pool.PoolEvents(); len(got) != 1 || got[0] != events[0] {
		t.Fatalf("PoolEvents = %v", got)
	}
	if _, err := pool.Fail("h1"); err == nil {
		t.Fatal("double fail should error")
	}
}

// TestHostPoolConcurrentPlaceFail exercises interleaved Place and Fail
// calls under the race detector: no panics, no lost VMs, capacity never
// exceeded.
func TestHostPoolConcurrentPlaceFail(t *testing.T) {
	hosts := make([]*Host, 8)
	for i := range hosts {
		hosts[i] = &Host{Name: fmt.Sprintf("h%d", i), Capacity: 10}
	}
	pool, err := NewHostPool(hosts...)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	placed := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				vms := []string{fmt.Sprintf("w%d-vm%d-a", w, i), fmt.Sprintf("w%d-vm%d-b", w, i)}
				if _, err := pool.Place(vms); err == nil {
					mu.Lock()
					for _, vm := range vms {
						placed[vm] = true
					}
					mu.Unlock()
				}
			}
		}()
	}
	orphaned := map[string]bool{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			orphans, err := pool.Fail(fmt.Sprintf("h%d", i))
			if err != nil {
				continue
			}
			mu.Lock()
			for _, vm := range orphans {
				orphaned[vm] = true
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	// Every placed VM is on exactly one surviving host, or was orphaned by
	// a host failure — never silently lost or duplicated.
	seen := map[string]string{}
	for _, h := range pool.Hosts() {
		if len(h.Assigned()) > h.Capacity {
			t.Fatalf("host %s over capacity", h.Name)
		}
		for _, vm := range h.Assigned() {
			if prev, dup := seen[vm]; dup {
				t.Fatalf("VM %s on both %s and %s", vm, prev, h.Name)
			}
			seen[vm] = h.Name
		}
	}
	for vm := range placed {
		if _, onHost := seen[vm]; !onHost && !orphaned[vm] {
			t.Fatalf("VM %s lost (placed, not on any host, not orphaned)", vm)
		}
	}
}
