// Package deploy automates the transfer and launch of rendered
// configurations (paper §5.7): the generated file tree is archived
// (tar.gz), "transferred" to an emulation host, extracted, and the lab is
// started with progress monitoring. The paper drives real hosts over SSH
// with expect scripts; here the emulation hosts are in-process (or
// directories on disk), but the stages and artifacts are the same — the
// archive produced here is byte-for-byte what would be shipped.
//
// Multi-host deployments (the §3.3 RPKI study placed 800+ VMs across
// StarBed hosts) are modelled by HostPool: hosts with VM capacity, a
// placement step, and cross-host link realisation (the paper's GRE-tunnel
// connections between distributed vSwitches, §5.4).
package deploy

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"autonetkit/internal/emul"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
)

// Archive packs a file set into a tar.gz bundle, deterministically (sorted
// paths, zeroed timestamps).
func Archive(fs *render.FileSet) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	for _, p := range fs.SortedPaths() {
		content, _ := fs.Read(p)
		hdr := &tar.Header{
			Name:    p,
			Mode:    0o644,
			Size:    int64(len(content)),
			ModTime: time.Unix(0, 0),
		}
		if strings.HasSuffix(p, ".startup") {
			hdr.Mode = 0o755
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("deploy: archiving %s: %w", p, err)
		}
		if _, err := io.WriteString(tw, content); err != nil {
			return nil, fmt.Errorf("deploy: archiving %s: %w", p, err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Extract unpacks a bundle produced by Archive back into a file set.
func Extract(bundle []byte) (*render.FileSet, error) {
	gz, err := gzip.NewReader(bytes.NewReader(bundle))
	if err != nil {
		return nil, fmt.Errorf("deploy: reading archive: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	fs := render.NewFileSet()
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("deploy: reading archive: %w", err)
		}
		clean := path.Clean(hdr.Name)
		if strings.HasPrefix(clean, "../") || path.IsAbs(clean) {
			return nil, fmt.Errorf("deploy: archive escapes extraction root: %q", hdr.Name)
		}
		var sb strings.Builder
		if _, err := io.Copy(&sb, tr); err != nil { //nolint:gosec // sizes bounded by archive
			return nil, fmt.Errorf("deploy: extracting %s: %w", hdr.Name, err)
		}
		fs.Write(clean, sb.String())
	}
	return fs, nil
}

// Event is one progress notification from a deployment.
type Event struct {
	Stage  string // archive, transfer, extract, lstart, machine, done
	Detail string
}

// Deployment runs the archive → transfer → extract → launch sequence
// against an in-process emulation host and exposes the running lab.
type Deployment struct {
	Host     string
	Platform string
	events   []Event
	lab      *emul.Lab
	onEvent  func(Event)
}

// Options configures a deployment.
type Options struct {
	Host     string
	Platform string
	// MaxBGPRounds bounds control-plane convergence (0 = default).
	MaxBGPRounds int
	// ConvergeTimeout bounds each engine run's wall-clock time (0 =
	// unbounded).
	ConvergeTimeout time.Duration
	// Lenient boots in lenient mode: devices whose configurations carry
	// error diagnostics are quarantined and the surviving topology boots;
	// Run then returns the usable deployment together with an error
	// wrapping emul.ErrPartialBoot. Strict mode (the default) fails the
	// whole deployment on any config error.
	Lenient bool
	// Supervise runs the convergence watchdog over the freshly booted lab:
	// a non-converged boot climbs the escalation ladder (bigger budget →
	// soft reset → quarantine), with one "watchdog" event per rung.
	Supervise bool
	// OnEvent, when set, receives progress events as they happen.
	OnEvent func(Event)
	// Obs, when set, collects deployment counters (e.g. quarantined
	// devices) and, under Incremental, the incremental-convergence counters.
	Obs *obs.Collector
	// Incremental enables incremental reconvergence in the booted lab:
	// delta SPF, BGP trajectory replay and data-plane node reuse. Routing
	// tables, verdicts and events stay byte-identical to full recompute.
	Incremental bool
	// Shards is the worker count for sharded BGP round evaluation (<= 1 =
	// sequential sweep). Per-AS shards evaluate concurrently inside each
	// convergence round; routing tables, verdicts and events stay
	// byte-identical at any value.
	Shards int
}

// Run executes the full deployment of a rendered file set and returns the
// started lab. Under Options.Lenient a partial boot returns a non-nil
// Deployment (with a running lab) alongside an error satisfying
// errors.Is(err, emul.ErrPartialBoot).
func Run(fs *render.FileSet, opts Options) (*Deployment, error) {
	if opts.Host == "" {
		opts.Host = "localhost"
	}
	if opts.Platform == "" {
		opts.Platform = "netkit"
	}
	d := &Deployment{Host: opts.Host, Platform: opts.Platform, onEvent: opts.OnEvent}

	bundle, err := Archive(fs)
	if err != nil {
		return nil, err
	}
	d.emit(Event{"archive", fmt.Sprintf("%d files, %d bytes compressed", fs.Len(), len(bundle))})

	// Transfer: in the paper this is an scp to the emulation server; here
	// the bundle crosses into the emulation host's address space.
	received := make([]byte, len(bundle))
	copy(received, bundle)
	d.emit(Event{"transfer", fmt.Sprintf("%d bytes to %s", len(received), opts.Host)})

	extracted, err := Extract(received)
	if err != nil {
		return nil, err
	}
	d.emit(Event{"extract", fmt.Sprintf("%d files", extracted.Len())})

	lab, err := emul.Load(extracted, opts.Host, opts.Platform)
	if err != nil {
		return nil, err
	}
	d.emit(Event{"lstart", fmt.Sprintf("launching %d machines", len(lab.VMNames()))})
	bootErr := lab.Boot(emul.BootOptions{
		MaxBGPRounds: opts.MaxBGPRounds, ConvergeTimeout: opts.ConvergeTimeout, Lenient: opts.Lenient,
		Incremental: opts.Incremental, Obs: opts.Obs, Shards: opts.Shards,
	})
	if bootErr != nil && !errors.Is(bootErr, emul.ErrPartialBoot) {
		return nil, bootErr
	}
	for _, ev := range lab.Events() {
		d.emit(Event{"machine", ev})
	}
	d.lab = lab
	if opts.Supervise {
		if err := superviseBoot(lab, opts.Obs, d.emit); err != nil {
			return d, err
		}
	}
	if bootErr != nil {
		q := lab.Quarantined()
		opts.Obs.Add(obs.CounterDevicesQuarantined, int64(len(q)))
		d.emit(Event{"quarantine", fmt.Sprintf("%d machines quarantined (%s)", len(q), strings.Join(q, ", "))})
		d.emit(Event{"done", "lab running (partial)"})
		return d, bootErr
	}
	d.emit(Event{"done", "lab running"})
	return d, nil
}

// Lab returns the running lab.
func (d *Deployment) Lab() *emul.Lab { return d.lab }

// Events returns all progress events so far.
func (d *Deployment) Events() []Event {
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}

func (d *Deployment) emit(ev Event) {
	d.events = append(d.events, ev)
	if d.onEvent != nil {
		d.onEvent(ev)
	}
}

// superviseBoot hands the freshly booted lab to the convergence watchdog,
// bridging every escalation rung into the deployment's event stream. The
// ladder's counters land in the collector (watchdog_* names).
func superviseBoot(lab *emul.Lab, c *obs.Collector, emit func(Event)) error {
	w := &emul.Watchdog{Obs: c, OnEvent: func(action, detail string) {
		emit(Event{"watchdog", detail})
	}}
	rep, err := w.Supervise(lab)
	if err != nil {
		return fmt.Errorf("deploy: watchdog: %w", err)
	}
	if rep.Escalations() > 0 {
		emit(Event{"watchdog", fmt.Sprintf("final verdict %s after %d escalations", rep.Final, rep.Escalations())})
	}
	return nil
}

// Host is one emulation server in a pool, with finite VM capacity (the
// §3.2 observation: emulation scale is limited by host memory).
type Host struct {
	Name     string
	Capacity int
	assigned []string
}

// Assigned returns the VMs placed on this host.
func (h *Host) Assigned() []string {
	out := make([]string, len(h.assigned))
	copy(out, h.assigned)
	return out
}

// HostPool places VMs across emulation hosts. All methods are safe for
// concurrent use; placement order is fixed at construction (ascending host
// name), so results are independent of both call interleaving within one
// placement and of any map iteration order in the caller.
type HostPool struct {
	mu      sync.Mutex
	hosts   []*Host // sorted by name
	events  []Event
	onEvent func(Event)
}

// NewHostPool builds a pool; capacities must be positive. Hosts are
// ordered by name regardless of the order given here — the tie-break
// contract Place documents.
func NewHostPool(hosts ...*Host) (*HostPool, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("deploy: empty host pool")
	}
	seen := map[string]bool{}
	for _, h := range hosts {
		if h.Capacity <= 0 {
			return nil, fmt.Errorf("deploy: host %s has capacity %d", h.Name, h.Capacity)
		}
		if seen[h.Name] {
			return nil, fmt.Errorf("deploy: duplicate host %s", h.Name)
		}
		seen[h.Name] = true
	}
	sorted := make([]*Host, len(hosts))
	copy(sorted, hosts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return &HostPool{hosts: sorted}, nil
}

// SetOnEvent installs a callback receiving the pool's structured events
// (currently host-failed) as they happen.
func (p *HostPool) SetOnEvent(fn func(Event)) {
	p.mu.Lock()
	p.onEvent = fn
	p.mu.Unlock()
}

// PoolEvents returns the pool's own structured events so far (distinct
// from a deployment's event stream).
func (p *HostPool) PoolEvents() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// emitLocked records an event (lock held); the callback runs without the
// lock so it may call back into the pool.
func (p *HostPool) emitLocked(ev Event) func() {
	p.events = append(p.events, ev)
	fn := p.onEvent
	return func() {
		if fn != nil {
			fn(ev)
		}
	}
}

// TotalCapacity sums host capacities.
func (p *HostPool) TotalCapacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, h := range p.hosts {
		n += h.Capacity
	}
	return n
}

// Hosts returns a snapshot of the pool's hosts, in name order.
func (p *HostPool) Hosts() []*Host {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Host, len(p.hosts))
	copy(out, p.hosts)
	return out
}

// Fail removes a host from the pool (a dead emulation server), emitting a
// structured host-failed event and returning the host's VMs sorted — the
// orphan list reads the same in every log, whatever order they were
// placed in — so the caller can re-place them onto the survivors.
func (p *HostPool) Fail(name string) ([]string, error) {
	p.mu.Lock()
	for i, h := range p.hosts {
		if h.Name != name {
			continue
		}
		p.hosts = append(p.hosts[:i], p.hosts[i+1:]...)
		orphans := h.Assigned()
		sort.Strings(orphans)
		notify := p.emitLocked(Event{"host-failed", fmt.Sprintf("%s removed from pool; %d VMs orphaned (%s)",
			name, len(orphans), strings.Join(orphans, ", "))})
		p.mu.Unlock()
		notify()
		return orphans, nil
	}
	p.mu.Unlock()
	return nil, fmt.Errorf("deploy: no host %s in pool", name)
}

// Placement maps VM names to host names.
type Placement map[string]string

// Place assigns VMs to hosts first-fit in deterministic order, returning
// an error when aggregate capacity is exceeded.
//
// Tie-breaking contract: VMs are considered in ascending name order, and
// hosts are filled in ascending host-name order (fixed at NewHostPool).
// Two hosts with equal capacity therefore always fill in stable name
// order — placement is a pure function of (host set, VM set), immune to
// map iteration order or the construction order of the pool.
func (p *HostPool) Place(vms []string) (Placement, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, h := range p.hosts {
		total += h.Capacity
	}
	used := 0
	for _, h := range p.hosts {
		used += len(h.assigned)
	}
	if len(vms) > total-used {
		return nil, fmt.Errorf("deploy: %d VMs exceed pool capacity %d", len(vms), total-used)
	}
	sorted := make([]string, len(vms))
	copy(sorted, vms)
	sort.Strings(sorted)
	out := Placement{}
	hi := 0
	for _, vm := range sorted {
		for hi < len(p.hosts) && len(p.hosts[hi].assigned) >= p.hosts[hi].Capacity {
			hi++
		}
		if hi >= len(p.hosts) {
			return nil, fmt.Errorf("deploy: pool exhausted placing %s", vm)
		}
		p.hosts[hi].assigned = append(p.hosts[hi].assigned, vm)
		out[vm] = p.hosts[hi].Name
	}
	return out, nil
}

// CrossHostLinks returns the (vmA, vmB) pairs whose endpoints landed on
// different hosts — the links needing GRE tunnels between the distributed
// vSwitches (§5.4). Pairs are returned sorted.
func CrossHostLinks(placement Placement, links [][2]string) [][2]string {
	var out [][2]string
	for _, l := range links {
		ha, ok1 := placement[l[0]]
		hb, ok2 := placement[l[1]]
		if ok1 && ok2 && ha != hb {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
