package deploy

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/retry"
)

func renderedLab(t *testing.T) *render.FileSet {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	in.AddEdge("r1", "r2", graph.Attrs{"type": "physical"})
	in.AddEdge("r2", "r3", graph.Attrs{"type": "physical"})
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestArchiveExtractRoundTrip(t *testing.T) {
	fs := renderedLab(t)
	bundle, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Extract(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != fs.Len() {
		t.Fatalf("files: %d vs %d", back.Len(), fs.Len())
	}
	for _, p := range fs.Paths() {
		a, _ := fs.Read(p)
		b, ok := back.Read(p)
		if !ok || a != b {
			t.Errorf("file %s corrupted in transit", p)
		}
	}
}

func TestArchiveDeterministic(t *testing.T) {
	fs := renderedLab(t)
	a, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("archive bytes differ across runs")
	}
}

func TestExtractRejectsEscapes(t *testing.T) {
	fs := render.NewFileSet()
	fs.Write("../evil", "x")
	bundle, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(bundle); err == nil {
		t.Error("path escape accepted")
	}
	if _, err := Extract([]byte("not a gzip")); err == nil {
		t.Error("garbage archive accepted")
	}
}

func TestRunDeployment(t *testing.T) {
	fs := renderedLab(t)
	var live []Event
	dep, err := Run(fs, Options{OnEvent: func(e Event) { live = append(live, e) }})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	if lab == nil || len(lab.VMNames()) != 3 {
		t.Fatalf("lab = %v", lab)
	}
	if !lab.BGPResult().Converged {
		t.Errorf("bgp = %+v", lab.BGPResult())
	}
	stages := map[string]bool{}
	for _, e := range dep.Events() {
		stages[e.Stage] = true
	}
	for _, want := range []string{"archive", "transfer", "extract", "lstart", "machine", "done"} {
		if !stages[want] {
			t.Errorf("missing stage %q in %v", want, dep.Events())
		}
	}
	if len(live) != len(dep.Events()) {
		t.Error("live event callback missed events")
	}
	// The running lab answers measurement commands.
	out, err := lab.Exec("r1", "show ip ospf neighbor")
	if err != nil || !strings.Contains(out, "r2") && !strings.Contains(out, "Full") {
		t.Errorf("lab not responsive: %v\n%s", err, out)
	}
}

func TestRunDefaults(t *testing.T) {
	fs := renderedLab(t)
	dep, err := Run(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Host != "localhost" || dep.Platform != "netkit" {
		t.Errorf("defaults = %s/%s", dep.Host, dep.Platform)
	}
}

func TestHostPoolPlacement(t *testing.T) {
	pool, err := NewHostPool(
		&Host{Name: "h1", Capacity: 2},
		&Host{Name: "h2", Capacity: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if pool.TotalCapacity() != 5 {
		t.Errorf("capacity = %d", pool.TotalCapacity())
	}
	placement, err := pool.Place([]string{"e", "d", "c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: sorted fill order.
	if placement["a"] != "h1" || placement["b"] != "h1" {
		t.Errorf("placement = %v", placement)
	}
	if placement["c"] != "h2" || placement["e"] != "h2" {
		t.Errorf("placement = %v", placement)
	}
	if got := pool.Hosts()[0].Assigned(); len(got) != 2 {
		t.Errorf("h1 assigned = %v", got)
	}
	if _, err := pool.Place([]string{"overflow"}); err == nil {
		t.Error("over-capacity placement accepted")
	}
}

func TestHostPoolErrors(t *testing.T) {
	if _, err := NewHostPool(); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewHostPool(&Host{Name: "h", Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewHostPool(&Host{Name: "h", Capacity: 1}, &Host{Name: "h", Capacity: 1}); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestCrossHostLinks(t *testing.T) {
	placement := Placement{"a": "h1", "b": "h1", "c": "h2"}
	links := [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}
	cross := CrossHostLinks(placement, links)
	if len(cross) != 2 {
		t.Fatalf("cross = %v", cross)
	}
	if cross[0] != [2]string{"a", "c"} || cross[1] != [2]string{"b", "c"} {
		t.Errorf("cross = %v (want sorted)", cross)
	}
}

func TestHostPoolPlaceEdgeCases(t *testing.T) {
	// Exact over-capacity error, reported before any assignment happens.
	pool, err := NewHostPool(&Host{Name: "h1", Capacity: 2}, &Host{Name: "h2", Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pool.Place([]string{"a", "b", "c", "d", "e", "f"})
	if err == nil || err.Error() != "deploy: 6 VMs exceed pool capacity 5" {
		t.Errorf("over-capacity error = %v", err)
	}
	if got := pool.Hosts()[0].Assigned(); len(got) != 0 {
		t.Errorf("failed placement left assignments: %v", got)
	}

	// Determinism: input order never changes the outcome.
	first, err := pool.Place([]string{"e", "a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewHostPool(&Host{Name: "h1", Capacity: 2}, &Host{Name: "h2", Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	second, err := other.Place([]string{"c", "e", "a"})
	if err != nil {
		t.Fatal(err)
	}
	for vm, host := range first {
		if second[vm] != host {
			t.Errorf("placement of %s differs: %s vs %s", vm, host, second[vm])
		}
	}

	// Incremental placement fills remaining per-host slots first-fit: a and
	// c already filled h1, so b lands on h2's spare capacity.
	more, err := pool.Place([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if more["b"] != "h2" {
		t.Errorf("incremental placement = %v (h1 is full)", more)
	}
	// A pool whose free slots are exhausted rejects further VMs even though
	// the request alone is under the aggregate capacity.
	if _, err := pool.Place([]string{"x", "y"}); err == nil {
		t.Error("placement beyond free slots accepted")
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	exact := retry.Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 800 * time.Millisecond,
		5: time.Second, // capped
		9: time.Second,
	} {
		if got := exact.Delay("h1", attempt); got != want {
			t.Errorf("attempt %d: delay = %v, want %v", attempt, got, want)
		}
	}

	jittered := retry.Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	if a, b := jittered.Delay("h1", 1), jittered.Delay("h1", 1); a != b {
		t.Errorf("jittered delay not deterministic: %v vs %v", a, b)
	}
	base := 100 * time.Millisecond
	if d := jittered.Delay("h1", 1); d < base || d > base+base/2 {
		t.Errorf("jittered delay %v outside [base, base*1.5]", d)
	}
	// Different hosts de-synchronise.
	if jittered.Delay("h1", 1) == jittered.Delay("h2", 1) {
		t.Log("hosts h1/h2 hashed to equal jitter (allowed, just unlucky)")
	}
	// The cap holds even after jitter is added.
	if d := jittered.Delay("h1", 9); d > time.Second {
		t.Errorf("jittered delay %v exceeds cap", d)
	}

	// Defaults.
	var zero retry.Policy
	if zero.Attempts() != 3 {
		t.Errorf("default attempts = %d", zero.Attempts())
	}
	if d := zero.Delay("h", 1); d < 50*time.Millisecond || d > 75*time.Millisecond {
		t.Errorf("default first delay = %v", d)
	}
}

func poolOf(t *testing.T, hosts ...*Host) *HostPool {
	t.Helper()
	pool, err := NewHostPool(hosts...)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func eventStages(events []Event) map[string]int {
	stages := map[string]int{}
	for _, e := range events {
		stages[e.Stage]++
	}
	return stages
}

func TestRunPoolHappyPath(t *testing.T) {
	fs := renderedLab(t)
	pool := poolOf(t, &Host{Name: "h1", Capacity: 2}, &Host{Name: "h2", Capacity: 2})
	col := obs.NewCollector()
	dep, err := RunPool(fs, pool, PoolOptions{Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Lab() == nil || len(dep.Lab().VMNames()) != 3 {
		t.Fatalf("lab = %v", dep.Lab())
	}
	if len(dep.Placement) != 3 || len(dep.FailedHosts) != 0 || len(dep.StrandedVMs) != 0 {
		t.Errorf("deployment = %+v", dep)
	}
	stages := eventStages(dep.Events())
	for _, want := range []string{"archive", "transfer", "extract", "place", "boot", "lstart", "done"} {
		if stages[want] == 0 {
			t.Errorf("missing stage %q in %v", want, dep.Events())
		}
	}
	if stages["boot"] != 2 {
		t.Errorf("boot events = %d, want one per host", stages["boot"])
	}
	if _, ok := col.Snapshot().Span("PoolDeploy"); !ok {
		t.Error("no PoolDeploy span")
	}
}

func TestRunPoolRetriesFlakyHost(t *testing.T) {
	fs := renderedLab(t)
	pool := poolOf(t, &Host{Name: "h1", Capacity: 2}, &Host{Name: "h2", Capacity: 2})
	var slept []time.Duration
	attempts := map[string]int{}
	col := obs.NewCollector()
	dep, err := RunPool(fs, pool, PoolOptions{
		Obs: col,
		Boot: func(host string, vms []string, attempt int) error {
			attempts[host]++
			if host == "h1" && attempt < 3 {
				return fmt.Errorf("transient boot wedge")
			}
			return nil
		},
		Retry: retry.Policy{Sleep: func(d time.Duration) { slept = append(slept, d) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Lab() == nil {
		t.Fatal("no lab after recovered boot")
	}
	if attempts["h1"] != 3 || attempts["h2"] != 1 {
		t.Errorf("attempts = %v", attempts)
	}
	// Exponential backoff between the failed attempts, no sleep after success.
	if len(slept) != 2 || slept[1] <= slept[0] {
		t.Errorf("backoff sleeps = %v", slept)
	}
	stages := eventStages(dep.Events())
	if stages["retry"] != 2 {
		t.Errorf("retry events = %d", stages["retry"])
	}
	if got := col.Snapshot().Counters[CounterBootRetries]; got != 2 {
		t.Errorf("retry counter = %d", got)
	}
	if len(dep.FailedHosts) != 0 {
		t.Errorf("failed hosts = %v", dep.FailedHosts)
	}
}

func TestRunPoolReplacesDeadHost(t *testing.T) {
	fs := renderedLab(t)
	pool := poolOf(t, &Host{Name: "h1", Capacity: 2}, &Host{Name: "h2", Capacity: 4})
	col := obs.NewCollector()
	dep, err := RunPool(fs, pool, PoolOptions{
		Obs: col,
		Boot: func(host string, vms []string, attempt int) error {
			if host == "h1" {
				return fmt.Errorf("host is on fire")
			}
			return nil
		},
		Retry: retry.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Lab() == nil {
		t.Fatal("no lab after graceful re-placement")
	}
	if len(dep.FailedHosts) != 1 || dep.FailedHosts[0] != "h1" {
		t.Errorf("failed hosts = %v", dep.FailedHosts)
	}
	// Every VM ended up on the survivor.
	for vm, host := range dep.Placement {
		if host != "h2" {
			t.Errorf("%s placed on %s after h1 died", vm, host)
		}
	}
	stages := eventStages(dep.Events())
	if stages["host-failed"] != 1 || stages["replace"] != 2 {
		t.Errorf("events = %v", dep.Events())
	}
	snap := col.Snapshot()
	if snap.Counters[CounterHostsFailed] != 1 || snap.Counters[CounterVMsReplaced] != 2 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if len(pool.Hosts()) != 1 {
		t.Errorf("dead host still in pool: %v", pool.Hosts())
	}
}

func TestRunPoolDegradesWithoutCapacity(t *testing.T) {
	fs := renderedLab(t)
	pool := poolOf(t, &Host{Name: "h1", Capacity: 2}, &Host{Name: "h2", Capacity: 1})
	dep, err := RunPool(fs, pool, PoolOptions{
		Boot: func(host string, vms []string, attempt int) error {
			if host == "h1" {
				return fmt.Errorf("host is on fire")
			}
			return nil
		},
		Retry: retry.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if dep == nil {
		t.Fatal("degraded deployment state discarded")
	}
	if dep.Lab() != nil {
		t.Error("degraded deployment launched a partial lab")
	}
	if len(dep.StrandedVMs) != 2 {
		t.Errorf("stranded = %v", dep.StrandedVMs)
	}
	if eventStages(dep.Events())["degraded"] != 1 {
		t.Errorf("events = %v", dep.Events())
	}
}

func TestRunPoolAttemptTimeout(t *testing.T) {
	fs := renderedLab(t)
	pool := poolOf(t, &Host{Name: "h1", Capacity: 4})
	release := make(chan struct{})
	defer close(release)
	fired := make(chan time.Time, 8)
	for i := 0; i < 8; i++ {
		fired <- time.Time{}
	}
	dep, err := RunPool(fs, pool, PoolOptions{
		Boot: func(host string, vms []string, attempt int) error {
			<-release // a wedged host: never returns on its own
			return fmt.Errorf("released")
		},
		Retry: retry.Policy{
			MaxAttempts:    2,
			AttemptTimeout: time.Millisecond,
			Sleep:          func(time.Duration) {},
			After:          func(time.Duration) <-chan time.Time { return fired },
		},
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded (sole host dead, nowhere to re-place)", err)
	}
	var sawTimeout bool
	for _, e := range dep.Events() {
		if e.Stage == "retry" && strings.Contains(e.Detail, "timed out") {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Errorf("no timeout event in %v", dep.Events())
	}
}

func TestRunPoolContextCancelledDuringBackoff(t *testing.T) {
	fs := renderedLab(t)
	pool, err := NewHostPool(&Host{Name: "h1", Capacity: 2}, &Host{Name: "h2", Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dep, err := RunPoolContext(ctx, fs, pool, PoolOptions{
		Boot: func(host string, vms []string, attempt int) error {
			cancel() // caller gives up while the first attempt is failing
			return fmt.Errorf("still booting")
		},
		// An hour-long backoff: only SleepCtx's cancellation path can let
		// the test finish.
		Retry: retry.Policy{MaxAttempts: 3, BaseDelay: time.Hour},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation aborts the deployment; it does not condemn the host.
	if len(dep.FailedHosts) != 0 {
		t.Errorf("failed hosts = %v, want none on cancellation", dep.FailedHosts)
	}
	if eventStages(dep.Events())["abort"] == 0 {
		t.Errorf("no abort event: %v", dep.Events())
	}
}

func TestRunPoolContextCancelledMidAttempt(t *testing.T) {
	fs := renderedLab(t)
	pool, err := NewHostPool(&Host{Name: "h1", Capacity: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	block := make(chan struct{})
	defer close(block)
	dep, err := RunPoolContext(ctx, fs, pool, PoolOptions{
		Boot: func(host string, vms []string, attempt int) error {
			cancel()
			<-block // a wedged host: only the ctx.Done select can return
			return nil
		},
		Retry: retry.Policy{MaxAttempts: 1},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dep.Lab() != nil {
		t.Error("cancelled deployment launched a lab")
	}
}
