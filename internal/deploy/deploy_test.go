package deploy

import (
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/render"
)

func renderedLab(t *testing.T) *render.FileSet {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	in.AddEdge("r1", "r2", graph.Attrs{"type": "physical"})
	in.AddEdge("r2", "r3", graph.Attrs{"type": "physical"})
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestArchiveExtractRoundTrip(t *testing.T) {
	fs := renderedLab(t)
	bundle, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Extract(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != fs.Len() {
		t.Fatalf("files: %d vs %d", back.Len(), fs.Len())
	}
	for _, p := range fs.Paths() {
		a, _ := fs.Read(p)
		b, ok := back.Read(p)
		if !ok || a != b {
			t.Errorf("file %s corrupted in transit", p)
		}
	}
}

func TestArchiveDeterministic(t *testing.T) {
	fs := renderedLab(t)
	a, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("archive bytes differ across runs")
	}
}

func TestExtractRejectsEscapes(t *testing.T) {
	fs := render.NewFileSet()
	fs.Write("../evil", "x")
	bundle, err := Archive(fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(bundle); err == nil {
		t.Error("path escape accepted")
	}
	if _, err := Extract([]byte("not a gzip")); err == nil {
		t.Error("garbage archive accepted")
	}
}

func TestRunDeployment(t *testing.T) {
	fs := renderedLab(t)
	var live []Event
	dep, err := Run(fs, Options{OnEvent: func(e Event) { live = append(live, e) }})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	if lab == nil || len(lab.VMNames()) != 3 {
		t.Fatalf("lab = %v", lab)
	}
	if !lab.BGPResult().Converged {
		t.Errorf("bgp = %+v", lab.BGPResult())
	}
	stages := map[string]bool{}
	for _, e := range dep.Events() {
		stages[e.Stage] = true
	}
	for _, want := range []string{"archive", "transfer", "extract", "lstart", "machine", "done"} {
		if !stages[want] {
			t.Errorf("missing stage %q in %v", want, dep.Events())
		}
	}
	if len(live) != len(dep.Events()) {
		t.Error("live event callback missed events")
	}
	// The running lab answers measurement commands.
	out, err := lab.Exec("r1", "show ip ospf neighbor")
	if err != nil || !strings.Contains(out, "r2") && !strings.Contains(out, "Full") {
		t.Errorf("lab not responsive: %v\n%s", err, out)
	}
}

func TestRunDefaults(t *testing.T) {
	fs := renderedLab(t)
	dep, err := Run(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Host != "localhost" || dep.Platform != "netkit" {
		t.Errorf("defaults = %s/%s", dep.Host, dep.Platform)
	}
}

func TestHostPoolPlacement(t *testing.T) {
	pool, err := NewHostPool(
		&Host{Name: "h1", Capacity: 2},
		&Host{Name: "h2", Capacity: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if pool.TotalCapacity() != 5 {
		t.Errorf("capacity = %d", pool.TotalCapacity())
	}
	placement, err := pool.Place([]string{"e", "d", "c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: sorted fill order.
	if placement["a"] != "h1" || placement["b"] != "h1" {
		t.Errorf("placement = %v", placement)
	}
	if placement["c"] != "h2" || placement["e"] != "h2" {
		t.Errorf("placement = %v", placement)
	}
	if got := pool.Hosts()[0].Assigned(); len(got) != 2 {
		t.Errorf("h1 assigned = %v", got)
	}
	if _, err := pool.Place([]string{"overflow"}); err == nil {
		t.Error("over-capacity placement accepted")
	}
}

func TestHostPoolErrors(t *testing.T) {
	if _, err := NewHostPool(); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewHostPool(&Host{Name: "h", Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewHostPool(&Host{Name: "h", Capacity: 1}, &Host{Name: "h", Capacity: 1}); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestCrossHostLinks(t *testing.T) {
	placement := Placement{"a": "h1", "b": "h1", "c": "h2"}
	links := [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}
	cross := CrossHostLinks(placement, links)
	if len(cross) != 2 {
		t.Fatalf("cross = %v", cross)
	}
	if cross[0] != [2]string{"a", "c"} || cross[1] != [2]string{"b", "c"} {
		t.Errorf("cross = %v (want sorted)", cross)
	}
}
