package deploy

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autonetkit/internal/obs"
	"autonetkit/internal/sched"
)

func TestRunClusterHappyPath(t *testing.T) {
	fs := renderedLab(t)
	col := obs.NewCollector()
	dep, err := RunCluster(fs, sched.Uniform(2, 2), ClusterOptions{Obs: col, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Lab() == nil || len(dep.Lab().VMNames()) != 3 {
		t.Fatalf("lab = %v", dep.Lab())
	}
	if len(dep.Placement) != 3 {
		t.Errorf("placement = %v", dep.Placement)
	}
	stages := eventStages(dep.Events())
	for _, want := range []string{"archive", "transfer", "extract", "place", "boot", "sched", "lstart", "done"} {
		if stages[want] == 0 {
			t.Errorf("missing stage %q in %v", want, dep.Events())
		}
	}
	st, ok := dep.Cluster.Reservation(dep.Reservation)
	if !ok || st.State != sched.ResActive {
		t.Fatalf("reservation = %+v", st)
	}
	if _, ok := col.Snapshot().Span("ClusterDeploy"); !ok {
		t.Error("no ClusterDeploy span")
	}
}

func TestRunClusterQueuedCapacityDegrades(t *testing.T) {
	fs := renderedLab(t)
	dep, err := RunCluster(fs, sched.Uniform(1, 2), ClusterOptions{Seed: 1})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded for 3 VMs on 2 slots", err)
	}
	if dep.Lab() != nil {
		t.Error("queued deployment launched a lab")
	}
	if eventStages(dep.Events())["degraded"] != 1 {
		t.Errorf("events = %v", dep.Events())
	}
}

func TestRunClusterReplacesDeadBootHost(t *testing.T) {
	fs := renderedLab(t)
	b := sched.NewStaticBackend(
		sched.HostInfo{Name: "h1", Capacity: 2},
		sched.HostInfo{Name: "h2", Capacity: 4},
	)
	col := obs.NewCollector()
	dep, err := RunCluster(fs, b, ClusterOptions{
		Obs:  col,
		Seed: 1,
		Boot: func(host string, vms []string, attempt int) error {
			if host == "h1" {
				return fmt.Errorf("host is on fire")
			}
			return nil
		},
		Retry: RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Lab() == nil {
		t.Fatal("no lab after graceful re-placement")
	}
	if len(dep.FailedHosts) != 1 || dep.FailedHosts[0] != "h1" {
		t.Errorf("failed hosts = %v", dep.FailedHosts)
	}
	for vm, host := range dep.Placement {
		if host != "h2" {
			t.Errorf("%s placed on %s after h1 died", vm, host)
		}
	}
	if got := col.Snapshot().Counters[obs.CounterVMsReplaced]; got == 0 {
		t.Error("vms_replaced counter not incremented")
	}
}

func TestRunClusterDegradesWithoutSurvivingCapacity(t *testing.T) {
	fs := renderedLab(t)
	b := sched.NewStaticBackend(
		sched.HostInfo{Name: "h1", Capacity: 2},
		sched.HostInfo{Name: "h2", Capacity: 1},
	)
	dep, err := RunCluster(fs, b, ClusterOptions{
		Seed: 1,
		Boot: func(host string, vms []string, attempt int) error {
			if host == "h1" {
				return fmt.Errorf("host is on fire")
			}
			return nil
		},
		Retry: RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if dep.Lab() != nil {
		t.Error("degraded deployment launched a partial lab")
	}
	if len(dep.StrandedVMs) == 0 {
		t.Error("no stranded VMs recorded")
	}
}

func TestClusterDeploymentDrainHost(t *testing.T) {
	fs := renderedLab(t)
	col := obs.NewCollector()
	dep, err := RunCluster(fs, sched.Uniform(3, 2), ClusterOptions{Obs: col, Seed: 1, Policy: sched.PolicySpread})
	if err != nil {
		t.Fatal(err)
	}
	// Find a host carrying VMs and drain it live.
	var victim string
	for _, host := range dep.Placement {
		victim = host
		break
	}
	moved, stranded, err := dep.DrainHost(victim)
	if err != nil {
		t.Fatalf("drain %s: %v", victim, err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded = %v", stranded)
	}
	if len(moved) == 0 {
		t.Fatal("nothing moved")
	}
	if got := dep.Cluster.VMsOn(victim); len(got) != 0 {
		t.Fatalf("%s still holds %v", victim, got)
	}
	for _, vm := range moved {
		if dep.Placement[vm] == victim {
			t.Fatalf("placement map still points %s at drained host", vm)
		}
	}
	// The moved VMs re-booted their device configs in one batch.
	var rebooted bool
	for _, ev := range dep.Lab().Events() {
		if strings.Contains(ev, "re-placement re-booted") {
			rebooted = true
		}
	}
	if !rebooted {
		t.Errorf("no batch re-boot in lab log: %v", dep.Lab().Events())
	}
	if got := col.Snapshot().Counters[obs.CounterHostCordoned]; got != 1 {
		t.Errorf("host_cordoned = %d", got)
	}
}

func TestClusterDeploymentFailHost(t *testing.T) {
	fs := renderedLab(t)
	dep, err := RunCluster(fs, sched.Uniform(3, 3), ClusterOptions{Seed: 1, Policy: sched.PolicySpread})
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, host := range dep.Placement {
		victim = host
		break
	}
	moved, stranded, err := dep.FailHost(victim)
	if err != nil {
		t.Fatalf("fail %s: %v", victim, err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded = %v", stranded)
	}
	if len(moved) == 0 {
		t.Fatal("nothing re-placed")
	}
	// The outage was visible (batch down) and then healed (batch re-boot).
	var sawDown, sawReboot bool
	for _, ev := range dep.Lab().Events() {
		if strings.Contains(ev, "host failure downed") {
			sawDown = true
		}
		if strings.Contains(ev, "re-placement re-booted") {
			sawReboot = true
		}
	}
	if !sawDown || !sawReboot {
		t.Errorf("lab log missing outage/heal: down=%v reboot=%v", sawDown, sawReboot)
	}
	// A failed host cannot be drained afterwards.
	if _, _, err := dep.DrainHost(victim); err == nil {
		t.Error("drain of failed host should error")
	}
}
