package deploy

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autonetkit/internal/obs"
	"autonetkit/internal/retry"
	"autonetkit/internal/sched"
)

func TestRunClusterHappyPath(t *testing.T) {
	fs := renderedLab(t)
	col := obs.NewCollector()
	dep, err := RunCluster(fs, sched.Uniform(2, 2), ClusterOptions{Obs: col, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Lab() == nil || len(dep.Lab().VMNames()) != 3 {
		t.Fatalf("lab = %v", dep.Lab())
	}
	if len(dep.Placement) != 3 {
		t.Errorf("placement = %v", dep.Placement)
	}
	stages := eventStages(dep.Events())
	for _, want := range []string{"archive", "transfer", "extract", "place", "boot", "sched", "lstart", "done"} {
		if stages[want] == 0 {
			t.Errorf("missing stage %q in %v", want, dep.Events())
		}
	}
	st, ok := dep.Cluster.Reservation(dep.Reservation)
	if !ok || st.State != sched.ResActive {
		t.Fatalf("reservation = %+v", st)
	}
	if _, ok := col.Snapshot().Span("ClusterDeploy"); !ok {
		t.Error("no ClusterDeploy span")
	}
}

func TestRunClusterQueuedCapacityDegrades(t *testing.T) {
	fs := renderedLab(t)
	dep, err := RunCluster(fs, sched.Uniform(1, 2), ClusterOptions{Seed: 1})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded for 3 VMs on 2 slots", err)
	}
	if dep.Lab() != nil {
		t.Error("queued deployment launched a lab")
	}
	if eventStages(dep.Events())["degraded"] != 1 {
		t.Errorf("events = %v", dep.Events())
	}
}

func TestRunClusterReplacesDeadBootHost(t *testing.T) {
	fs := renderedLab(t)
	b := sched.NewStaticBackend(
		sched.HostInfo{Name: "h1", Capacity: 2},
		sched.HostInfo{Name: "h2", Capacity: 4},
	)
	col := obs.NewCollector()
	dep, err := RunCluster(fs, b, ClusterOptions{
		Obs:  col,
		Seed: 1,
		Boot: func(host string, vms []string, attempt int) error {
			if host == "h1" {
				return fmt.Errorf("host is on fire")
			}
			return nil
		},
		Retry: retry.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Lab() == nil {
		t.Fatal("no lab after graceful re-placement")
	}
	if len(dep.FailedHosts) != 1 || dep.FailedHosts[0] != "h1" {
		t.Errorf("failed hosts = %v", dep.FailedHosts)
	}
	for vm, host := range dep.Placement {
		if host != "h2" {
			t.Errorf("%s placed on %s after h1 died", vm, host)
		}
	}
	if got := col.Snapshot().Counters[obs.CounterVMsReplaced]; got == 0 {
		t.Error("vms_replaced counter not incremented")
	}
}

func TestRunClusterDegradesWithoutSurvivingCapacity(t *testing.T) {
	fs := renderedLab(t)
	b := sched.NewStaticBackend(
		sched.HostInfo{Name: "h1", Capacity: 2},
		sched.HostInfo{Name: "h2", Capacity: 1},
	)
	dep, err := RunCluster(fs, b, ClusterOptions{
		Seed: 1,
		Boot: func(host string, vms []string, attempt int) error {
			if host == "h1" {
				return fmt.Errorf("host is on fire")
			}
			return nil
		},
		Retry: retry.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if dep.Lab() != nil {
		t.Error("degraded deployment launched a partial lab")
	}
	if len(dep.StrandedVMs) == 0 {
		t.Error("no stranded VMs recorded")
	}
}

func TestClusterDeploymentDrainHost(t *testing.T) {
	fs := renderedLab(t)
	col := obs.NewCollector()
	dep, err := RunCluster(fs, sched.Uniform(3, 2), ClusterOptions{Obs: col, Seed: 1, Policy: sched.PolicySpread})
	if err != nil {
		t.Fatal(err)
	}
	// Find a host carrying VMs and drain it live.
	var victim string
	for _, host := range dep.Placement {
		victim = host
		break
	}
	moved, stranded, err := dep.DrainHost(victim)
	if err != nil {
		t.Fatalf("drain %s: %v", victim, err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded = %v", stranded)
	}
	if len(moved) == 0 {
		t.Fatal("nothing moved")
	}
	if got := dep.Cluster.VMsOn(victim); len(got) != 0 {
		t.Fatalf("%s still holds %v", victim, got)
	}
	for _, vm := range moved {
		if dep.Placement[vm] == victim {
			t.Fatalf("placement map still points %s at drained host", vm)
		}
	}
	// The moved VMs re-booted their device configs in one batch.
	var rebooted bool
	for _, ev := range dep.Lab().Events() {
		if strings.Contains(ev, "re-placement re-booted") {
			rebooted = true
		}
	}
	if !rebooted {
		t.Errorf("no batch re-boot in lab log: %v", dep.Lab().Events())
	}
	if got := col.Snapshot().Counters[obs.CounterHostCordoned]; got != 1 {
		t.Errorf("host_cordoned = %d", got)
	}
}

func TestClusterDeploymentFailHost(t *testing.T) {
	fs := renderedLab(t)
	dep, err := RunCluster(fs, sched.Uniform(3, 3), ClusterOptions{Seed: 1, Policy: sched.PolicySpread})
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, host := range dep.Placement {
		victim = host
		break
	}
	moved, stranded, err := dep.FailHost(victim)
	if err != nil {
		t.Fatalf("fail %s: %v", victim, err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded = %v", stranded)
	}
	if len(moved) == 0 {
		t.Fatal("nothing re-placed")
	}
	// The outage was visible (batch down) and then healed (batch re-boot).
	var sawDown, sawReboot bool
	for _, ev := range dep.Lab().Events() {
		if strings.Contains(ev, "host failure downed") {
			sawDown = true
		}
		if strings.Contains(ev, "re-placement re-booted") {
			sawReboot = true
		}
	}
	if !sawDown || !sawReboot {
		t.Errorf("lab log missing outage/heal: down=%v reboot=%v", sawDown, sawReboot)
	}
	// A failed host cannot be drained afterwards.
	if _, _, err := dep.DrainHost(victim); err == nil {
		t.Error("drain of failed host should error")
	}
}

func TestRunClusterDurableCrashRecover(t *testing.T) {
	fs := renderedLab(t)
	dir := t.TempDir()
	dep, err := RunCluster(fs, sched.Uniform(3, 2), ClusterOptions{
		Seed:     2013,
		Policy:   sched.PolicySpread,
		StateDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, host := range dep.Placement {
		victim = host
		break
	}
	if _, _, err := dep.DrainHost(victim); err != nil {
		t.Fatalf("drain %s: %v", victim, err)
	}
	before := dep.Cluster.Status().JSON()

	summary, err := dep.CrashSched()
	if err != nil {
		t.Fatalf("crash-sched: %v", err)
	}
	if !strings.Contains(summary, "byte-identical") {
		t.Errorf("summary = %q", summary)
	}
	if got := dep.Cluster.Status().JSON(); got != before {
		t.Errorf("status changed across crash:\nbefore: %s\nafter: %s", before, got)
	}
	// The recovered scheduler keeps working: uncordon the drained host and
	// drain another one.
	if err := dep.Cluster.Uncordon(victim); err != nil {
		t.Fatalf("uncordon after recovery: %v", err)
	}
	if eventStages(dep.Events())["crash-sched"] == 0 {
		t.Errorf("no crash-sched event: %v", dep.Events())
	}
}

func TestRunClusterReleasesStaleRecoveredReservation(t *testing.T) {
	fs := renderedLab(t)
	dir := t.TempDir()
	first, err := RunCluster(fs, sched.Uniform(2, 2), ClusterOptions{Seed: 7, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Cluster.Close(); err != nil {
		t.Fatal(err)
	}
	// Same state dir, same seed: the prior run's "lab" reservation must be
	// released and re-reserved, not collide.
	second, err := RunCluster(renderedLab(t), sched.Uniform(2, 2), ClusterOptions{Seed: 7, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Cluster.Close()
	if !second.Recovery.Recovered {
		t.Error("second run did not recover prior state")
	}
	if eventStages(second.Events())["recover"] == 0 {
		t.Errorf("no recover event: %v", second.Events())
	}
	st, ok := second.Cluster.Reservation(second.Reservation)
	if !ok || st.State != sched.ResActive {
		t.Fatalf("reservation after recovery = %+v", st)
	}
}

func TestCrashSchedRequiresStateDir(t *testing.T) {
	fs := renderedLab(t)
	dep, err := RunCluster(fs, sched.Uniform(2, 2), ClusterOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.CrashSched(); err == nil {
		t.Fatal("crash-sched without StateDir should error")
	}
}

func TestClusterDeploymentSilenceHost(t *testing.T) {
	fs := renderedLab(t)
	fb := sched.NewFlakyBackend(sched.Uniform(3, 2), 7)
	dep, err := RunCluster(fs, fb, ClusterOptions{
		Seed:   7,
		Policy: sched.PolicySpread,
		Lease:  sched.LeasePolicy{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, host := range dep.Placement {
		victim = host
		break
	}
	moved, stranded, err := dep.SilenceHost(victim)
	if err != nil {
		t.Fatalf("silence %s: %v", victim, err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded = %v", stranded)
	}
	if len(moved) == 0 {
		t.Fatal("nothing re-placed after the silenced host died")
	}
	if !fb.Silenced(victim) {
		t.Error("backend does not report the host silenced")
	}
	if got := dep.Cluster.VMsOn(victim); len(got) != 0 {
		t.Fatalf("silenced host still holds %v", got)
	}
	// The outage was visible (batch down), then healed (batch re-boot).
	var sawDown, sawReboot bool
	for _, ev := range dep.Lab().Events() {
		if strings.Contains(ev, "host failure downed") {
			sawDown = true
		}
		if strings.Contains(ev, "re-placement re-booted") {
			sawReboot = true
		}
	}
	if !sawDown || !sawReboot {
		t.Errorf("lab log missing outage/heal: down=%v reboot=%v", sawDown, sawReboot)
	}
	if eventStages(dep.Events())["silence"] == 0 {
		t.Errorf("no silence event: %v", dep.Events())
	}
}

func TestClusterDeploymentSilenceNeedsFlakyBackend(t *testing.T) {
	fs := renderedLab(t)
	dep, err := RunCluster(fs, sched.Uniform(2, 2), ClusterOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dep.SilenceHost("h01"); err == nil {
		t.Fatal("silence without a flaky backend should error")
	}
	if err := dep.FlakyHost("h01", 0.5); err == nil {
		t.Fatal("flaky-host without a flaky backend should error")
	}
}

func TestClusterDeploymentFlakyHostAndReservationState(t *testing.T) {
	fs := renderedLab(t)
	fb := sched.NewFlakyBackend(sched.Uniform(2, 2), 3)
	dep, err := RunCluster(fs, fb, ClusterOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.FlakyHost("h02", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := dep.FlakyHost("h02", 1.5); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	state, err := dep.ReservationState(dep.Reservation)
	if err != nil || state != "active" {
		t.Fatalf("ReservationState = %q, %v", state, err)
	}
	if _, err := dep.ReservationState("ghost"); err == nil {
		t.Fatal("unknown reservation should error")
	}
}

// TestClusterBootSharesBreaker: a breaker on the cluster retry policy is
// consulted by host boots — a host that tripped it during boot is
// short-circuited instead of re-attempted.
func TestClusterBootSharesBreaker(t *testing.T) {
	fs := renderedLab(t)
	b := sched.NewStaticBackend(
		sched.HostInfo{Name: "h1", Capacity: 2},
		sched.HostInfo{Name: "h2", Capacity: 4},
	)
	breaker := retry.NewBreakerSet(retry.BreakerConfig{FailAfter: 1, OpenFor: time.Hour})
	// Trip h1's breaker before the deployment even starts.
	breaker.Failure("h1")
	boots := map[string]int{}
	dep, err := RunCluster(fs, b, ClusterOptions{
		Seed: 1,
		Boot: func(host string, vms []string, attempt int) error {
			boots[host]++
			return nil
		},
		Retry: retry.Policy{MaxAttempts: 3, Sleep: func(time.Duration) {}, Breaker: breaker},
	})
	if err != nil {
		t.Fatal(err)
	}
	if boots["h1"] != 0 {
		t.Errorf("open-circuit host booted %d times", boots["h1"])
	}
	if boots["h2"] == 0 {
		t.Error("healthy host never booted")
	}
	if len(dep.FailedHosts) != 1 || dep.FailedHosts[0] != "h1" {
		t.Errorf("failed hosts = %v", dep.FailedHosts)
	}
}
