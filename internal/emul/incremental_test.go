package emul

import (
	"reflect"
	"strings"
	"testing"

	"autonetkit/internal/dataplane"
	"autonetkit/internal/obs"
	"autonetkit/internal/routing"
)

// Incremental-reconvergence parity tests: a lab booted with
// BootOptions.Incremental must be observably byte-identical to a lab booted
// in full-recompute mode across every incident and supervision sequence —
// events, verdicts, routes, adjacency tables and FIBs. These are the
// emul-layer half of the determinism bar; the engine-level equivalence
// lives in internal/routing/incremental_test.go.

// labState is everything a converge produces that callers can observe.
type labState struct {
	events    []string
	result    routing.BGPResult
	verdict   Verdict
	neighbors map[string][]routing.OSPFNeighbor
	isis      map[string][]routing.OSPFNeighbor
	bgp       map[string][]routing.BGPRoute
	fibs      map[string][]dataplane.FIBEntry
	churn     int
	unstable  []string
}

func captureLab(lab *Lab) labState {
	s := labState{
		events:    lab.Events(),
		result:    lab.BGPResult(),
		verdict:   lab.Verdict(),
		neighbors: map[string][]routing.OSPFNeighbor{},
		isis:      map[string][]routing.OSPFNeighbor{},
		bgp:       map[string][]routing.BGPRoute{},
		fibs:      map[string][]dataplane.FIBEntry{},
		churn:     lab.TotalChurn(),
		unstable:  lab.UnstableSpeakers(2),
	}
	for _, name := range lab.VMNames() {
		s.neighbors[name] = lab.OSPFNeighbors(name)
		s.isis[name] = lab.ISISNeighbors(name)
		s.bgp[name] = lab.BGPRoutes(name)
		if net := lab.Network(); net != nil {
			if node, ok := net.Node(name); ok {
				s.fibs[name] = node.FIB.Entries()
			}
		}
	}
	return s
}

func checkLabsIdentical(t *testing.T, stage string, full, inc *Lab) {
	t.Helper()
	fs, is := captureLab(full), captureLab(inc)
	if !reflect.DeepEqual(fs.events, is.events) {
		t.Fatalf("%s: events differ:\n--- full ---\n%s\n--- incremental ---\n%s",
			stage, strings.Join(fs.events, "\n"), strings.Join(is.events, "\n"))
	}
	if fs.result != is.result {
		t.Fatalf("%s: BGP result differs: full %+v, incremental %+v", stage, fs.result, is.result)
	}
	if fs.verdict != is.verdict {
		t.Fatalf("%s: verdict differs: full %s, incremental %s", stage, fs.verdict, is.verdict)
	}
	if fs.churn != is.churn {
		t.Fatalf("%s: total churn differs: full %d, incremental %d", stage, fs.churn, is.churn)
	}
	if !reflect.DeepEqual(fs.unstable, is.unstable) {
		t.Fatalf("%s: unstable speakers differ: full %v, incremental %v", stage, fs.unstable, is.unstable)
	}
	for _, field := range []struct {
		name string
		a, b any
	}{
		{"ospf neighbors", fs.neighbors, is.neighbors},
		{"isis neighbors", fs.isis, is.isis},
		{"bgp routes", fs.bgp, is.bgp},
		{"fib entries", fs.fibs, is.fibs},
	} {
		if !reflect.DeepEqual(field.a, field.b) {
			t.Fatalf("%s: %s differ:\nfull: %+v\nincremental: %+v", stage, field.name, field.a, field.b)
		}
	}
}

// twinLabs boots two labs from the same fixture: one full-recompute, one
// incremental (with a collector for the incremental counters).
func twinLabs(t *testing.T) (full, inc *Lab, col *obs.Collector) {
	t.Helper()
	full, _ = buildLab(t, "netkit", "quagga")
	if err := full.Boot(BootOptions{}); err != nil {
		t.Fatal(err)
	}
	inc, _ = buildLab(t, "netkit", "quagga")
	col = obs.NewCollector()
	if err := inc.Boot(BootOptions{Incremental: true, Obs: col}); err != nil {
		t.Fatal(err)
	}
	checkLabsIdentical(t, "boot", full, inc)
	return full, inc, col
}

// A no-op reconverge is the best case for every incremental layer: no
// config changed, so delta SPF recomputes nothing, every speaker-round
// restores from the trajectory, and every FIB node is reused — while the
// result stays identical to a full recompute.
func TestIncrementalNoopReconvergeParity(t *testing.T) {
	full, inc, col := twinLabs(t)
	if _, err := full.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Reconverge(); err != nil {
		t.Fatal(err)
	}
	checkLabsIdentical(t, "noop reconverge", full, inc)

	if rec := col.Counter(obs.CounterSPFDeltaRecomputes); rec != 0 {
		t.Errorf("spf_delta_recomputes = %d, want 0 for a no-op", rec)
	}
	if skipped := col.Counter(obs.CounterSPFSourcesSkipped); skipped == 0 {
		t.Error("spf_sources_skipped = 0, want every source skipped")
	}
	rounds := inc.BGPResult().Rounds
	speakers := len(inc.LiveVMNames())
	if got := col.Counter(obs.CounterBGPSpeakersRestored); got != int64(rounds*speakers) {
		t.Errorf("bgp_speakers_restored = %d, want %d (%d rounds x %d speakers)",
			got, rounds*speakers, rounds, speakers)
	}
	if got := col.Counter(obs.CounterRoundsSkipped); got != int64(rounds) {
		t.Errorf("rounds_skipped = %d, want %d", got, rounds)
	}
	if got := col.Counter(obs.CounterFIBNodesReused); got != int64(speakers) {
		t.Errorf("fib_nodes_reused = %d, want %d", got, speakers)
	}
}

// Link incidents: fail, restore, fail a different link — each reconverge
// replays the previous trajectory where admissible and must land on the
// exact state the full-recompute lab reaches.
func TestIncrementalLinkIncidentParity(t *testing.T) {
	full, inc, _ := twinLabs(t)
	steps := []struct {
		name string
		run  func(l *Lab) error
	}{
		{"fail r1-r3", func(l *Lab) error { return l.FailLink("r1", "r3") }},
		{"restore r1-r3", func(l *Lab) error { return l.RestoreLink("r1", "r3") }},
		{"fail r3-r5", func(l *Lab) error { return l.FailLink("r3", "r5") }},
		{"restore r3-r5", func(l *Lab) error { return l.RestoreLink("r3", "r5") }},
		{"fail node r2", func(l *Lab) error { return l.FailNode("r2") }},
		{"restore node r2", func(l *Lab) error { return l.RestoreNode("r2") }},
	}
	for _, st := range steps {
		if err := st.run(full); err != nil {
			t.Fatalf("%s (full): %v", st.name, err)
		}
		if err := st.run(inc); err != nil {
			t.Fatalf("%s (incremental): %v", st.name, err)
		}
		checkLabsIdentical(t, st.name, full, inc)
	}
}

// Partition heal: isolate a machine, then restore it. The partition cuts
// the inter-AS session, so both the IGP dirty set and the BGP static-dirty
// set are exercised; the heal must return both labs to identical states.
func TestIncrementalPartitionHealParity(t *testing.T) {
	full, inc, _ := twinLabs(t)
	for _, lab := range []*Lab{full, inc} {
		if err := lab.Partition([]string{"r5"}); err != nil {
			t.Fatal(err)
		}
	}
	checkLabsIdentical(t, "partition", full, inc)
	for _, lab := range []*Lab{full, inc} {
		if err := lab.RestoreNode("r5"); err != nil {
			t.Fatal(err)
		}
	}
	checkLabsIdentical(t, "heal", full, inc)
}

// Flap storm: a per-round session flap defeats replay entirely (perturbed
// runs neither record nor replay), and the watchdog's ladder — budget
// escalation, soft reset — must climb identically in both modes, including
// the soft reset's replay invalidation.
func TestIncrementalFlapStormParity(t *testing.T) {
	full, inc, _ := twinLabs(t)
	for _, lab := range []*Lab{full, inc} {
		lab.SetPerturber(routing.NewScheduledPerturber(7, []routing.PerturbRule{
			{Kind: routing.PerturbFlap, A: "r1", B: "r2", Every: 1, Recover: true},
		}))
		if res, err := lab.Reconverge(); err != nil || res.Converged {
			t.Fatalf("perturbed reconverge: res=%+v err=%v", res, err)
		}
	}
	checkLabsIdentical(t, "flap storm", full, inc)

	fullRep, err := (&Watchdog{}).Supervise(full)
	if err != nil {
		t.Fatal(err)
	}
	incRep, err := (&Watchdog{}).Supervise(inc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fullRep, incRep) {
		t.Fatalf("supervision reports differ:\n--- full ---\n%s--- incremental ---\n%s",
			fullRep.Describe(), incRep.Describe())
	}
	checkLabsIdentical(t, "supervised recovery", full, inc)

	// After the storm heals, the next clean incident round-trips identically
	// again (the soft reset discarded the stale trajectory).
	for _, lab := range []*Lab{full, inc} {
		lab.SetPerturber(nil)
		if err := lab.FailLink("r1", "r3"); err != nil {
			t.Fatal(err)
		}
		if err := lab.RestoreLink("r1", "r3"); err != nil {
			t.Fatal(err)
		}
	}
	checkLabsIdentical(t, "post-storm incident", full, inc)
}

// Quarantined speakers: a persistent flap makes the ladder quarantine an
// endpoint. The survivor reconvergence — speakers vanishing from the
// engine's order — must be identical in both modes.
func TestIncrementalQuarantineParity(t *testing.T) {
	full, inc, _ := twinLabs(t)
	for _, lab := range []*Lab{full, inc} {
		lab.SetPerturber(routing.NewScheduledPerturber(21, []routing.PerturbRule{
			{Kind: routing.PerturbFlap, A: "r1", B: "r2", Every: 1}, // no Recover
		}))
		if res, err := lab.Reconverge(); err != nil || res.Converged {
			t.Fatalf("perturbed reconverge: res=%+v err=%v", res, err)
		}
	}
	fullRep, err := (&Watchdog{}).Supervise(full)
	if err != nil {
		t.Fatal(err)
	}
	incRep, err := (&Watchdog{}).Supervise(inc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fullRep, incRep) {
		t.Fatalf("supervision reports differ:\n--- full ---\n%s--- incremental ---\n%s",
			fullRep.Describe(), incRep.Describe())
	}
	if len(incRep.Quarantined) == 0 {
		t.Fatalf("expected a quarantine rung:\n%s", incRep.Describe())
	}
	checkLabsIdentical(t, "post-quarantine", full, inc)
}

// Incident ids: every injection numbers itself, watchdog events cite the
// triggering incident, and escalation steps carry it for reports.
func TestIncidentIDThreading(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	if lab.LastIncidentID() != 0 {
		t.Fatalf("fresh lab LastIncidentID = %d", lab.LastIncidentID())
	}
	if err := lab.FailLink("r1", "r3"); err != nil {
		t.Fatal(err)
	}
	if got := lab.LastIncidentID(); got != 1 {
		t.Fatalf("after first incident LastIncidentID = %d", got)
	}
	if err := lab.RestoreLink("r1", "r3"); err != nil {
		t.Fatal(err)
	}
	if got := lab.LastIncidentID(); got != 2 {
		t.Fatalf("after second incident LastIncidentID = %d", got)
	}

	// A flap storm after the incidents: the watchdog's lab events and
	// escalation steps must name incident #2 as the trigger.
	lab.SetPerturber(routing.NewScheduledPerturber(7, []routing.PerturbRule{
		{Kind: routing.PerturbFlap, A: "r1", B: "r2", Every: 1, Recover: true},
	}))
	if res, err := lab.Reconverge(); err != nil || res.Converged {
		t.Fatalf("perturbed reconverge: res=%+v err=%v", res, err)
	}
	rep, err := (&Watchdog{}).Supervise(lab)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatalf("not recovered:\n%s", rep.Describe())
	}
	for i, step := range rep.Steps {
		if step.Incident != 2 {
			t.Errorf("step %d incident = %d, want 2", i, step.Incident)
		}
		if !strings.Contains(step.String(), "[incident #2]") {
			t.Errorf("step %d string missing incident tag: %s", i, step)
		}
	}
	events := strings.Join(lab.Events(), "\n")
	for _, want := range []string{
		"INCIDENT #1: link r1 -- r3",
		"INCIDENT #2: link r1 -- r3",
		"(incident #2)", // watchdog escalation suffix
	} {
		if !strings.Contains(events, want) {
			t.Errorf("events missing %q:\n%s", want, events)
		}
	}
}
