package emul

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// JunOS configurations are brace-structured; parse into a generic tree and
// extract the protocol state from it.

type junosNode struct {
	name     string
	children []*junosNode
	leaves   []string // terminal statements (semicolon-terminated)
}

func (n *junosNode) child(name string) *junosNode {
	for _, c := range n.children {
		if c.name == name || strings.HasPrefix(c.name, name+" ") {
			return c
		}
	}
	return nil
}

func (n *junosNode) childrenWithPrefix(prefix string) []*junosNode {
	var out []*junosNode
	for _, c := range n.children {
		if strings.HasPrefix(c.name, prefix) {
			out = append(out, c)
		}
	}
	return out
}

// leafValue returns the remainder of the first leaf starting with key.
func (n *junosNode) leafValue(key string) (string, bool) {
	for _, l := range n.leaves {
		if strings.HasPrefix(l, key+" ") {
			return strings.TrimSpace(strings.TrimPrefix(l, key+" ")), true
		}
		if l == key {
			return "", true
		}
	}
	return "", false
}

// parseJunosTree converts brace-structured text into a tree.
func parseJunosTree(conf string) (*junosNode, error) {
	root := &junosNode{name: "(root)"}
	stack := []*junosNode{root}
	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasSuffix(line, "{"):
			name := strings.TrimSpace(strings.TrimSuffix(line, "{"))
			node := &junosNode{name: name}
			top := stack[len(stack)-1]
			top.children = append(top.children, node)
			stack = append(stack, node)
		case line == "}":
			if len(stack) == 1 {
				return nil, fmt.Errorf("emul: junos line %d: unbalanced '}'", lineNo+1)
			}
			stack = stack[:len(stack)-1]
		case strings.HasSuffix(line, ";"):
			top := stack[len(stack)-1]
			top.leaves = append(top.leaves, strings.TrimSuffix(line, ";"))
		default:
			return nil, fmt.Errorf("emul: junos line %d: unterminated statement %q", lineNo+1, line)
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("emul: junos config has %d unclosed blocks", len(stack)-1)
	}
	return root, nil
}

// parseJunosConfig recovers a DeviceConfig from a rendered JunOS
// configuration.
func parseJunosConfig(hostname, conf string) (*routing.DeviceConfig, error) {
	root, err := parseJunosTree(conf)
	if err != nil {
		return nil, err
	}
	dc := &routing.DeviceConfig{Hostname: hostname}
	if sys := root.child("system"); sys != nil {
		if hn, ok := sys.leafValue("host-name"); ok {
			dc.Hostname = hn
		}
	}
	// Interfaces.
	if ifs := root.child("interfaces"); ifs != nil {
		for _, ifNode := range ifs.children {
			name := ifNode.name
			unit := ifNode.child("unit 0")
			if unit == nil {
				continue
			}
			inet := unit.child("family inet")
			if inet == nil {
				continue
			}
			addrStr, ok := inet.leafValue("address")
			if !ok {
				continue
			}
			p, err := netip.ParsePrefix(addrStr)
			if err != nil {
				return nil, fmt.Errorf("emul: %s: junos interface %s: bad address %q", hostname, name, addrStr)
			}
			if strings.HasPrefix(name, "lo") {
				dc.Loopback = p.Addr()
				dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
					Name: "lo", Addr: p.Addr(), Prefix: netip.PrefixFrom(p.Addr(), 32), Cost: 1,
				})
				continue
			}
			dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
				Name: name, Addr: p.Addr(), Prefix: p.Masked(), Cost: 1,
			})
		}
	}
	protocols := root.child("protocols")
	// OSPF.
	if protocols != nil {
		if ospf := protocols.child("ospf"); ospf != nil {
			cfg := &routing.OSPFConfig{ProcessID: 1}
			for _, area := range ospf.childrenWithPrefix("area ") {
				areaNum, err := strconv.Atoi(strings.TrimPrefix(area.name, "area "))
				if err != nil {
					return nil, fmt.Errorf("emul: %s: bad ospf area %q", hostname, area.name)
				}
				for _, ifn := range area.childrenWithPrefix("interface ") {
					pStr := strings.TrimPrefix(ifn.name, "interface ")
					p, err := netip.ParsePrefix(pStr)
					if err != nil {
						return nil, fmt.Errorf("emul: %s: bad ospf interface %q", hostname, pStr)
					}
					cfg.Networks = append(cfg.Networks, routing.OSPFNetwork{Prefix: p.Masked(), Area: areaNum})
					if _, ok := ifn.leafValue("passive"); ok {
						for i := range dc.Interfaces {
							if dc.Interfaces[i].Prefix == p.Masked() {
								dc.Interfaces[i].Passive = true
							}
						}
					}
					if mStr, ok := ifn.leafValue("metric"); ok {
						m, err := strconv.Atoi(mStr)
						if err != nil {
							return nil, fmt.Errorf("emul: %s: bad ospf metric %q", hostname, mStr)
						}
						for i := range dc.Interfaces {
							if dc.Interfaces[i].Prefix == p.Masked() {
								dc.Interfaces[i].Cost = m
							}
						}
					}
				}
				// Bare interface statements (no metric block).
				for _, l := range area.leaves {
					if strings.HasPrefix(l, "interface ") {
						pStr := strings.TrimPrefix(l, "interface ")
						p, err := netip.ParsePrefix(pStr)
						if err != nil {
							return nil, fmt.Errorf("emul: %s: bad ospf interface %q", hostname, pStr)
						}
						cfg.Networks = append(cfg.Networks, routing.OSPFNetwork{Prefix: p.Masked(), Area: areaNum})
					}
				}
			}
			dc.OSPF = cfg
		}
	}
	// BGP.
	var asn int
	var routerID netip.Addr
	if ro := root.child("routing-options"); ro != nil {
		if v, ok := ro.leafValue("autonomous-system"); ok {
			asn, err = strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("emul: %s: bad autonomous-system %q", hostname, v)
			}
		}
		if v, ok := ro.leafValue("router-id"); ok {
			routerID, err = netip.ParseAddr(v)
			if err != nil {
				return nil, fmt.Errorf("emul: %s: bad router-id %q", hostname, v)
			}
		}
	}
	if protocols != nil {
		if bgpNode := protocols.child("bgp"); bgpNode != nil {
			if asn == 0 {
				return nil, fmt.Errorf("emul: %s: bgp configured without autonomous-system", hostname)
			}
			cfg := &routing.BGPConfig{ASN: asn, RouterID: routerID}
			for _, grp := range bgpNode.childrenWithPrefix("group ") {
				typ, _ := grp.leafValue("type")
				peerAS := asn
				if v, ok := grp.leafValue("peer-as"); ok {
					peerAS, err = strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("emul: %s: bad peer-as %q", hostname, v)
					}
				}
				med := 0
				if v, ok := grp.leafValue("metric-out"); ok {
					med, _ = strconv.Atoi(v)
				}
				lp := 0
				if v, ok := grp.leafValue("local-preference"); ok {
					lp, _ = strconv.Atoi(v)
				}
				_, isRRGroup := grp.leafValue("cluster")
				updateSource := ""
				if _, ok := grp.leafValue("local-address"); ok {
					updateSource = "lo"
				}
				for _, l := range grp.leaves {
					if !strings.HasPrefix(l, "neighbor ") {
						continue
					}
					addr, err := netip.ParseAddr(strings.TrimPrefix(l, "neighbor "))
					if err != nil {
						return nil, fmt.Errorf("emul: %s: bad neighbor in %q", hostname, l)
					}
					cfg.Neighbors = append(cfg.Neighbors, routing.BGPNeighbor{
						Addr: addr, RemoteASN: peerAS,
						MEDOut: med, LocalPrefIn: lp,
						RRClient:     isRRGroup && typ == "internal",
						UpdateSource: updateSource,
					})
				}
			}
			cfg.Networks = junosAdvertisedNetworks(root, dc)
			dc.BGP = cfg
		}
	}
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	return dc, nil
}

// junosAdvertisedNetworks reads the routing-options static advertisements
// rendered by the template (the JunOS equivalent of `network` statements is
// an export policy; the template renders them as annotated statics).
func junosAdvertisedNetworks(root *junosNode, dc *routing.DeviceConfig) []netip.Prefix {
	var out []netip.Prefix
	ro := root.child("routing-options")
	if ro == nil {
		return nil
	}
	for _, l := range ro.leaves {
		if strings.HasPrefix(l, "advertise ") {
			if p, err := netip.ParsePrefix(strings.TrimPrefix(l, "advertise ")); err == nil {
				out = append(out, p.Masked())
			}
		}
	}
	return out
}
