package emul

import (
	"net/netip"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// JunOS configurations are brace-structured; parse into a generic tree and
// extract the protocol state from it. Both passes recover from malformed
// input: the tree parser skips unbalanced/unterminated lines (recording a
// diagnostic for each) and the extraction pass skips the offending stanza,
// so every independent problem in a config surfaces in one boot.

type junosNode struct {
	name     string
	line     int // 1-based source line of the block header (0 for root)
	children []*junosNode
	leaves   []string // terminal statements (semicolon-terminated)
	leafLine []int    // source line of each leaf
}

func (n *junosNode) child(name string) *junosNode {
	for _, c := range n.children {
		if c.name == name || strings.HasPrefix(c.name, name+" ") {
			return c
		}
	}
	return nil
}

func (n *junosNode) childrenWithPrefix(prefix string) []*junosNode {
	var out []*junosNode
	for _, c := range n.children {
		if strings.HasPrefix(c.name, prefix) {
			out = append(out, c)
		}
	}
	return out
}

// leafValue returns the remainder of the first leaf starting with key.
func (n *junosNode) leafValue(key string) (string, bool) {
	for _, l := range n.leaves {
		if strings.HasPrefix(l, key+" ") {
			return strings.TrimSpace(strings.TrimPrefix(l, key+" ")), true
		}
		if l == key {
			return "", true
		}
	}
	return "", false
}

// parseJunosTree converts brace-structured text into a tree. Structural
// problems — an unmatched '}', a statement without ';' or '{', blocks
// still open at EOF — are recorded and the parse continues, closing what
// it can: a partial tree plus the full problem list beats dying on the
// first bad brace.
func parseJunosTree(conf string, sink *diagSink) *junosNode {
	root := &junosNode{name: "(root)"}
	stack := []*junosNode{root}
	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasSuffix(line, "{"):
			name := strings.TrimSpace(strings.TrimSuffix(line, "{"))
			node := &junosNode{name: name, line: lineNo + 1}
			top := stack[len(stack)-1]
			top.children = append(top.children, node)
			stack = append(stack, node)
		case line == "}":
			if len(stack) == 1 {
				sink.errorf(lineNo+1, "unbalanced '}'")
				continue
			}
			stack = stack[:len(stack)-1]
		case strings.HasSuffix(line, ";"):
			top := stack[len(stack)-1]
			top.leaves = append(top.leaves, strings.TrimSuffix(line, ";"))
			top.leafLine = append(top.leafLine, lineNo+1)
		default:
			sink.errorf(lineNo+1, "unterminated statement %q", line)
		}
	}
	if len(stack) != 1 {
		sink.errorf(0, "config has %d unclosed block(s), first %q opened on line %d",
			len(stack)-1, stack[1].name, stack[1].line)
	}
	return root
}

// parseJunosConfig recovers a DeviceConfig from a rendered JunOS
// configuration.
func parseJunosConfig(hostname, conf string) (*routing.DeviceConfig, Diagnostics) {
	sink := &diagSink{device: hostname, file: hostname + ".conf"}
	root := parseJunosTree(conf, sink)
	dc := &routing.DeviceConfig{Hostname: hostname}
	if sys := root.child("system"); sys != nil {
		if hn, ok := sys.leafValue("host-name"); ok {
			dc.Hostname = hn
		}
	}
	// Interfaces.
	if ifs := root.child("interfaces"); ifs != nil {
		for _, ifNode := range ifs.children {
			name := ifNode.name
			unit := ifNode.child("unit 0")
			if unit == nil {
				continue
			}
			inet := unit.child("family inet")
			if inet == nil {
				continue
			}
			addrStr, ok := inet.leafValue("address")
			if !ok {
				continue
			}
			p, err := netip.ParsePrefix(addrStr)
			if err != nil {
				sink.errorf(inet.line, "interface %s: bad address %q", name, addrStr)
				continue
			}
			if strings.HasPrefix(name, "lo") {
				dc.Loopback = p.Addr()
				dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
					Name: "lo", Addr: p.Addr(), Prefix: netip.PrefixFrom(p.Addr(), 32), Cost: 1,
				})
				continue
			}
			dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
				Name: name, Addr: p.Addr(), Prefix: p.Masked(), Cost: 1,
			})
		}
	}
	protocols := root.child("protocols")
	// OSPF.
	if protocols != nil {
		if ospf := protocols.child("ospf"); ospf != nil {
			cfg := &routing.OSPFConfig{ProcessID: 1}
			for _, area := range ospf.childrenWithPrefix("area ") {
				areaNum, err := strconv.Atoi(strings.TrimPrefix(area.name, "area "))
				if err != nil {
					sink.errorf(area.line, "bad ospf area %q", area.name)
					continue
				}
				for _, ifn := range area.childrenWithPrefix("interface ") {
					pStr := strings.TrimPrefix(ifn.name, "interface ")
					p, err := netip.ParsePrefix(pStr)
					if err != nil {
						sink.errorf(ifn.line, "bad ospf interface %q", pStr)
						continue
					}
					cfg.Networks = append(cfg.Networks, routing.OSPFNetwork{Prefix: p.Masked(), Area: areaNum})
					if _, ok := ifn.leafValue("passive"); ok {
						for i := range dc.Interfaces {
							if dc.Interfaces[i].Prefix == p.Masked() {
								dc.Interfaces[i].Passive = true
							}
						}
					}
					if mStr, ok := ifn.leafValue("metric"); ok {
						m, err := strconv.Atoi(mStr)
						if err != nil {
							sink.errorf(ifn.line, "bad ospf metric %q", mStr)
							continue
						}
						for i := range dc.Interfaces {
							if dc.Interfaces[i].Prefix == p.Masked() {
								dc.Interfaces[i].Cost = m
							}
						}
					}
				}
				// Bare interface statements (no metric block).
				for li, l := range area.leaves {
					if strings.HasPrefix(l, "interface ") {
						pStr := strings.TrimPrefix(l, "interface ")
						p, err := netip.ParsePrefix(pStr)
						if err != nil {
							sink.errorf(area.leafLine[li], "bad ospf interface %q", pStr)
							continue
						}
						cfg.Networks = append(cfg.Networks, routing.OSPFNetwork{Prefix: p.Masked(), Area: areaNum})
					}
				}
			}
			dc.OSPF = cfg
		}
	}
	// BGP.
	var asn int
	var routerID netip.Addr
	if ro := root.child("routing-options"); ro != nil {
		if v, ok := ro.leafValue("autonomous-system"); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				sink.errorf(ro.line, "bad autonomous-system %q", v)
			} else {
				asn = n
			}
		}
		if v, ok := ro.leafValue("router-id"); ok {
			rid, err := netip.ParseAddr(v)
			if err != nil {
				sink.errorf(ro.line, "bad router-id %q", v)
			} else {
				routerID = rid
			}
		}
	}
	if protocols != nil {
		if bgpNode := protocols.child("bgp"); bgpNode != nil {
			if asn == 0 {
				sink.errorf(bgpNode.line, "bgp configured without autonomous-system")
			} else {
				cfg := &routing.BGPConfig{ASN: asn, RouterID: routerID}
				seenNbr := map[netip.Addr]int{} // addr -> first line
				for _, grp := range bgpNode.childrenWithPrefix("group ") {
					typ, _ := grp.leafValue("type")
					peerAS := asn
					if v, ok := grp.leafValue("peer-as"); ok {
						n, err := strconv.Atoi(v)
						if err != nil {
							sink.errorf(grp.line, "group %q: bad peer-as %q", strings.TrimPrefix(grp.name, "group "), v)
							continue
						}
						peerAS = n
					}
					med := 0
					if v, ok := grp.leafValue("metric-out"); ok {
						med, _ = strconv.Atoi(v)
					}
					lp := 0
					if v, ok := grp.leafValue("local-preference"); ok {
						lp, _ = strconv.Atoi(v)
					}
					_, isRRGroup := grp.leafValue("cluster")
					updateSource := ""
					if _, ok := grp.leafValue("local-address"); ok {
						updateSource = "lo"
					}
					for li, l := range grp.leaves {
						if !strings.HasPrefix(l, "neighbor ") {
							continue
						}
						addr, err := netip.ParseAddr(strings.TrimPrefix(l, "neighbor "))
						if err != nil {
							sink.errorf(grp.leafLine[li], "bad neighbor in %q", l)
							continue
						}
						if first, dup := seenNbr[addr]; dup {
							sink.errorf(grp.leafLine[li], "duplicate neighbor %v (first declared on line %d)", addr, first)
							continue
						}
						seenNbr[addr] = grp.leafLine[li]
						cfg.Neighbors = append(cfg.Neighbors, routing.BGPNeighbor{
							Addr: addr, RemoteASN: peerAS,
							MEDOut: med, LocalPrefIn: lp,
							RRClient:     isRRGroup && typ == "internal",
							UpdateSource: updateSource,
						})
					}
				}
				cfg.Networks = junosAdvertisedNetworks(root, dc)
				dc.BGP = cfg
			}
		}
	}
	if !sink.diags.HasErrors() {
		if err := dc.Validate(); err != nil {
			sink.errorf(0, "%v", err)
		}
	}
	return dc, sink.diags
}

// junosAdvertisedNetworks reads the routing-options static advertisements
// rendered by the template (the JunOS equivalent of `network` statements is
// an export policy; the template renders them as annotated statics).
func junosAdvertisedNetworks(root *junosNode, dc *routing.DeviceConfig) []netip.Prefix {
	var out []netip.Prefix
	ro := root.child("routing-options")
	if ro == nil {
		return nil
	}
	for _, l := range ro.leaves {
		if strings.HasPrefix(l, "advertise ") {
			if p, err := netip.ParsePrefix(strings.TrimPrefix(l, "advertise ")); err == nil {
				out = append(out, p.Masked())
			}
		}
	}
	return out
}
