package emul

import (
	"strings"
	"testing"

	"autonetkit/internal/obs"
	"autonetkit/internal/routing"
)

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		res        routing.BGPResult
		components int
		want       Verdict
	}{
		{routing.BGPResult{Converged: true}, 1, VerdictConverged},
		{routing.BGPResult{Converged: true}, 0, VerdictConverged},
		{routing.BGPResult{Converged: true}, 2, VerdictPartitioned},
		{routing.BGPResult{Oscillating: true, CycleLen: 2}, 1, VerdictOscillating},
		{routing.BGPResult{Oscillating: true, CycleLen: -1}, 1, VerdictStarved},
		{routing.BGPResult{Cancelled: true}, 1, VerdictCancelled},
		// Cancellation dominates even a nominally converged result.
		{routing.BGPResult{Cancelled: true, Converged: true}, 1, VerdictCancelled},
	} {
		if got := Classify(tc.res, tc.components); got != tc.want {
			t.Errorf("Classify(%+v, %d) = %s, want %s", tc.res, tc.components, got, tc.want)
		}
	}
}

func TestVerdictRecoverable(t *testing.T) {
	want := map[Verdict]bool{
		VerdictConverged:   false,
		VerdictOscillating: true,
		VerdictStarved:     true,
		VerdictPartitioned: false,
		VerdictCancelled:   false,
	}
	for v, expect := range want {
		if got := v.Recoverable(); got != expect {
			t.Errorf("%s.Recoverable() = %v, want %v", v, got, expect)
		}
	}
}

func TestEscalationStepString(t *testing.T) {
	s := EscalationStep{Action: "observe", Verdict: VerdictOscillating, Detail: "oscillating (cycle length 2 after 12 rounds)"}
	if got := s.String(); got != "observe: oscillating (oscillating (cycle length 2 after 12 rounds))" {
		t.Errorf("String() = %q", got)
	}
	s = EscalationStep{Action: "soft-reset", Targets: []string{"r1", "r2"}, Verdict: VerdictConverged, Detail: "converged in 9 rounds"}
	if got := s.String(); got != "soft-reset [r1, r2]: converged (converged in 9 rounds)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSupervisionReportShape(t *testing.T) {
	rep := SupervisionReport{}
	if rep.Escalations() != 0 {
		t.Errorf("empty report escalations = %d", rep.Escalations())
	}
	rep.Steps = []EscalationStep{
		{Action: "observe", Verdict: VerdictOscillating, Detail: "a"},
		{Action: "escalate-budget", Verdict: VerdictConverged, Detail: "b"},
	}
	if rep.Escalations() != 1 {
		t.Errorf("escalations = %d, want 1", rep.Escalations())
	}
	text := rep.Describe()
	if !strings.Contains(text, "watchdog observe: oscillating (a)") ||
		!strings.Contains(text, "watchdog escalate-budget: converged (b)") {
		t.Errorf("Describe:\n%s", text)
	}
}

// A healthy lab costs the watchdog one observation and zero escalations.
func TestWatchdogHealthyLabNoEscalation(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	col := obs.NewCollector()
	w := &Watchdog{Obs: col}
	rep, err := w.Supervise(lab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Final != VerdictConverged || rep.Recovered || rep.Escalations() != 0 {
		t.Fatalf("report = %+v", rep)
	}
	stats := col.Snapshot()
	if stats.Counters[obs.CounterWatchdogRuns] != 1 {
		t.Errorf("runs counter = %d", stats.Counters[obs.CounterWatchdogRuns])
	}
	for _, c := range []string{
		obs.CounterWatchdogRecovered,
		obs.CounterWatchdogBudgetEscalations,
		obs.CounterWatchdogSoftResets,
		obs.CounterWatchdogQuarantines,
	} {
		if stats.Counters[c] != 0 {
			t.Errorf("%s = %d on a healthy lab", c, stats.Counters[c])
		}
	}
}

// A recoverable fault (session-state-local flap) climbs exactly two rungs:
// the budget escalation re-confirms the oscillation, the soft reset heals
// it, and the ladder stops there with Recovered set.
func TestWatchdogRecoversFromFlap(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	lab.SetPerturber(routing.NewScheduledPerturber(21, []routing.PerturbRule{
		{Kind: routing.PerturbFlap, A: "r1", B: "r2", Every: 1, Recover: true},
	}))
	if res, err := lab.Reconverge(); err != nil || res.Converged {
		t.Fatalf("perturbed reconverge: res=%+v err=%v", res, err)
	}

	col := obs.NewCollector()
	var actions []string
	w := &Watchdog{Obs: col, OnEvent: func(action, detail string) { actions = append(actions, action) }}
	rep, err := w.Supervise(lab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Final != VerdictConverged || !rep.Recovered {
		t.Fatalf("report not recovered:\n%s", rep.Describe())
	}
	if rep.Escalations() != 2 || len(rep.Quarantined) != 0 {
		t.Fatalf("escalations = %d, quarantined = %v:\n%s", rep.Escalations(), rep.Quarantined, rep.Describe())
	}
	wantActions := []string{"observe", "escalate-budget", "soft-reset"}
	if len(actions) != len(wantActions) {
		t.Fatalf("actions = %v", actions)
	}
	for i := range wantActions {
		if actions[i] != wantActions[i] {
			t.Fatalf("actions = %v, want %v", actions, wantActions)
		}
	}
	// The soft-reset rung targeted the flapping session's endpoints.
	reset := rep.Steps[2]
	if len(reset.Targets) != 2 || reset.Targets[0] != "r1" || reset.Targets[1] != "r2" {
		t.Errorf("soft-reset targets = %v, want [r1 r2]", reset.Targets)
	}
	stats := col.Snapshot()
	for counter, want := range map[string]int64{
		obs.CounterWatchdogRuns:              1,
		obs.CounterWatchdogRecovered:         1,
		obs.CounterWatchdogBudgetEscalations: 1,
		obs.CounterWatchdogSoftResets:        1,
		obs.CounterWatchdogQuarantines:       0,
	} {
		if got := stats.Counters[counter]; got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
	if lab.Verdict() != VerdictConverged {
		t.Errorf("lab verdict = %s after recovery", lab.Verdict())
	}
	// The escalated budget did not leak.
	if lab.Budget() != (routing.ConvergenceBudget{}) {
		t.Errorf("budget leaked: %+v", lab.Budget())
	}
	// The ladder is visible in the lab's event log.
	events := strings.Join(lab.Events(), "\n")
	for _, want := range []string{"WATCHDOG: budget escalated", "WATCHDOG: soft reset of r1, r2"} {
		if !strings.Contains(events, want) {
			t.Errorf("lab events missing %q", want)
		}
	}
}

// A persistent flap defeats every repair rung; the ladder ends by
// quarantining one endpoint, after which the survivors converge.
func TestWatchdogQuarantinesPersistentFlap(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	lab.SetPerturber(routing.NewScheduledPerturber(21, []routing.PerturbRule{
		{Kind: routing.PerturbFlap, A: "r1", B: "r2", Every: 1}, // no Recover
	}))
	if res, err := lab.Reconverge(); err != nil || res.Converged {
		t.Fatalf("perturbed reconverge: res=%+v err=%v", res, err)
	}

	col := obs.NewCollector()
	w := &Watchdog{Obs: col}
	rep, err := w.Supervise(lab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Final != VerdictConverged || !rep.Recovered {
		t.Fatalf("survivors did not converge:\n%s", rep.Describe())
	}
	if rep.Escalations() != 3 {
		t.Fatalf("escalations = %d, want the full ladder:\n%s", rep.Escalations(), rep.Describe())
	}
	// Greedy cover of the single flapping session r1:r2 picks one endpoint
	// (tie broken lexicographically -> r1).
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "r1" {
		t.Fatalf("quarantined = %v, want [r1]", rep.Quarantined)
	}
	if q := lab.Quarantined(); len(q) != 1 || q[0] != "r1" {
		t.Errorf("lab quarantine list = %v", q)
	}
	stats := col.Snapshot()
	if stats.Counters[obs.CounterWatchdogQuarantines] != 1 {
		t.Errorf("quarantine counter = %d", stats.Counters[obs.CounterWatchdogQuarantines])
	}
	events := strings.Join(lab.Events(), "\n")
	if !strings.Contains(events, "machine r1 QUARANTINED by watchdog (persistent oscillation)") {
		t.Errorf("no quarantine event:\n%s", events)
	}
	// The quarantined machine is out of the live set but still a VM record.
	live := strings.Join(lab.LiveVMNames(), ",")
	if strings.Contains(live, "r1") {
		t.Errorf("r1 still live: %s", live)
	}
	if len(lab.VMNames()) != 5 {
		t.Errorf("VM records = %v", lab.VMNames())
	}
}

// Supervising an unstarted lab errors cleanly at the first mutating rung.
func TestWatchdogLabGuards(t *testing.T) {
	lab, _ := buildLab(t, "netkit", "quagga")
	if _, err := lab.Reconverge(); err == nil {
		t.Error("Reconverge on unstarted lab succeeded")
	}
	if _, err := lab.SoftResetSpeakers([]string{"r1"}); err == nil {
		t.Error("SoftResetSpeakers on unstarted lab succeeded")
	}
	if _, err := lab.QuarantineSpeakers([]string{"r1"}, "test"); err == nil {
		t.Error("QuarantineSpeakers on unstarted lab succeeded")
	}
}

// The last rung refuses to quarantine the whole lab, and refuses unknown or
// already-quarantined machines.
func TestQuarantineSpeakersGuards(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	all := lab.LiveVMNames()
	if _, err := lab.QuarantineSpeakers(all, "test"); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Errorf("quarantine-all err = %v", err)
	}
	if _, err := lab.QuarantineSpeakers([]string{"nosuch"}, "test"); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := lab.QuarantineSpeakers([]string{"r5"}, "test"); err != nil {
		t.Fatalf("first quarantine: %v", err)
	}
	if _, err := lab.QuarantineSpeakers([]string{"r5"}, "test"); err == nil {
		t.Error("double quarantine accepted")
	}
}
