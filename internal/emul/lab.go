package emul

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"autonetkit/internal/dataplane"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/routing"
)

// VM is one emulated machine: its file tree, the protocol state parsed from
// it at boot, and its management (TAP) address.
type VM struct {
	Name   string
	Files  map[string]string // paths relative to the machine root
	Config *routing.DeviceConfig
	TapIP  netip.Addr
	Booted bool
}

// Lab is a running emulation: a set of VMs, the converged protocol engines
// and the data plane.
//
// Incident injection (FailLink, FailNode, Partition, Restore*) and the
// read-side API (Exec, the neighbor/route accessors, Events) may be called
// from different goroutines: mutation takes the write lock, reads take the
// read lock, so a measurement client probing the lab while an incident
// re-converges it observes either the pre- or post-incident network, never
// a half-rebuilt one. The *VM values returned by VM() are snapshots of
// pointers into lab state; their Config field is owned by the lab and must
// not be read concurrently with incident injection.
type Lab struct {
	Host     string
	Platform string

	mu    sync.RWMutex
	vms   map[string]*VM
	order []string

	// baseline holds a deep copy of every machine's boot-time DeviceConfig,
	// captured at Start, so incidents are reversible: RestoreLink and
	// RestoreNode re-install interfaces from these snapshots.
	baseline map[string]*routing.DeviceConfig

	domain    *routing.OSPFDomain
	isis      *routing.OSPFDomain
	igp       routing.IGPCoster
	bgp       *routing.BGPEngine
	bgpResult routing.BGPResult
	net       *dataplane.Network

	flatParse flatParser
	started   bool
	budget    routing.ConvergenceBudget
	events    []string

	// pert, when non-nil, is threaded into every engine the lab builds
	// (OSPF, IS-IS, BGP) so reconvergence runs under scripted control-plane
	// perturbation; nil keeps the zero-perturbation fast path.
	pert routing.Perturber

	// Incremental-reconvergence state. When incremental is on, the IGP
	// domains persist across converges (delta SPF diffs the link state),
	// bgpReplay carries the previous run's recorded trajectory into the next
	// engine, and prevSigs + the engines' changed-source/speaker sets decide
	// which data-plane nodes can be reused verbatim. All of it is advisory:
	// the converge output is byte-identical to a full recompute, incremental
	// mode only skips work whose result is provably unchanged.
	incremental bool
	bgpReplay   *routing.BGPReplay
	prevSigs    map[string]uint64
	obs         *obs.Collector

	// shards is the worker count for sharded BGP round evaluation; <= 1
	// keeps the sequential sweep. Threaded into every BGP engine the lab
	// builds; results are byte-identical at any value (shard.go).
	shards int

	// incidentSeq numbers injected incidents (FailLink, FailNode, Partition
	// and their restores) so watchdog escalations and chaos reports can name
	// the incident that triggered them. 0 = no incident injected yet.
	incidentSeq int

	// diags accumulates every Diagnostic found while ingesting this lab's
	// configuration tree (at Load for C-BGP, at Boot for the per-machine
	// platforms). quarantined lists the devices a lenient boot excluded
	// because their configs carried error-level diagnostics, sorted.
	diags       Diagnostics
	quarantined []string
}

// Diagnostics returns every problem found while parsing this lab's
// configurations, in report order. Non-empty after Boot (or after Load on
// C-BGP labs); includes warnings as well as errors.
func (l *Lab) Diagnostics() Diagnostics {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.diags.Sorted()
}

// Quarantined returns the devices a lenient boot excluded from the lab,
// sorted. Empty after a fully healthy (or strict) boot.
func (l *Lab) Quarantined() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, len(l.quarantined))
	copy(out, l.quarantined)
	return out
}

// Events returns the boot/progress log (the deployment monitor's view).
func (l *Lab) Events() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, len(l.events))
	copy(out, l.events)
	return out
}

func (l *Lab) logf(format string, args ...any) {
	l.events = append(l.events, fmt.Sprintf(format, args...))
}

// incidentNote renders the " (incident #N)" suffix watchdog event lines
// carry once incidents have been injected; empty before the first one, so
// incident-free labs log exactly as they always did. Callers hold the lock.
func (l *Lab) incidentNote() string {
	if l.incidentSeq == 0 {
		return ""
	}
	return fmt.Sprintf(" (incident #%d)", l.incidentSeq)
}

// VMNames returns machine names in lab.conf order.
func (l *Lab) VMNames() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// VM returns a machine by name.
func (l *Lab) VM(name string) (*VM, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	vm, ok := l.vms[name]
	return vm, ok
}

// BGPResult returns the control-plane outcome after the most recent
// convergence (Start or incident injection).
func (l *Lab) BGPResult() routing.BGPResult {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bgpResult
}

// SetBudget replaces the convergence budget applied to subsequent
// reconvergences (incident injection). The chaos engine uses this to give
// every scenario step its own bounded budget.
func (l *Lab) SetBudget(b routing.ConvergenceBudget) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.budget = b
}

// Budget returns the current convergence budget.
func (l *Lab) Budget() routing.ConvergenceBudget {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.budget
}

// SetIncremental switches incremental reconvergence on or off for
// subsequent converges. Turning it off discards all cached convergence
// state, so the next converge is a guaranteed-full recompute.
func (l *Lab) SetIncremental(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.incremental = on
	if !on {
		l.bgpReplay = nil
		l.prevSigs = nil
	}
}

// Incremental reports whether incremental reconvergence is enabled.
func (l *Lab) Incremental() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.incremental
}

// SetShards sets the worker count for sharded BGP round evaluation in
// subsequent converges. n <= 1 (the default) keeps the sequential sweep;
// any value produces byte-identical routing tables, verdicts and events.
func (l *Lab) SetShards(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.shards = n
}

// Shards returns the configured shard worker count.
func (l *Lab) Shards() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.shards
}

// BGPShardCount returns the structural shard count of the converged BGP
// topology — the number of distinct ASes among its speakers. It is a
// property of the topology, not of the SetShards knob, so reports that
// print it stay byte-identical across worker counts. 0 before boot.
func (l *Lab) BGPShardCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.bgp == nil {
		return 0
	}
	return l.bgp.ShardCount()
}

// LastIncidentID returns the sequence number of the most recently injected
// incident (0 if none). Watchdog escalations and chaos reports use it to
// attribute recovery actions to the fault that triggered them.
func (l *Lab) LastIncidentID() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.incidentSeq
}

// BGPRoutes returns a machine's selected BGP routes.
func (l *Lab) BGPRoutes(name string) []routing.BGPRoute {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bgpRoutes(name)
}

func (l *Lab) bgpRoutes(name string) []routing.BGPRoute {
	if l.bgp == nil {
		return nil
	}
	return l.bgp.BestRoutes(name)
}

// OSPFNeighbors returns a machine's OSPF adjacencies.
func (l *Lab) OSPFNeighbors(name string) []routing.OSPFNeighbor {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ospfNeighbors(name)
}

func (l *Lab) ospfNeighbors(name string) []routing.OSPFNeighbor {
	if l.domain == nil {
		return nil
	}
	return l.domain.Neighbors(name)
}

// ISISNeighbors returns a machine's IS-IS adjacencies (for labs whose IGP
// is IS-IS, §7).
func (l *Lab) ISISNeighbors(name string) []routing.OSPFNeighbor {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.isisNeighbors(name)
}

func (l *Lab) isisNeighbors(name string) []routing.OSPFNeighbor {
	if l.isis == nil {
		return nil
	}
	return l.isis.Neighbors(name)
}

// Network exposes the data plane (nil for C-BGP labs). The returned
// network is replaced wholesale on reconvergence, not mutated, but the
// pointer read itself is synchronized here.
func (l *Lab) Network() *dataplane.Network {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.net
}

// Links returns the machine pairs that currently share at least one
// data-plane subnet — the lab's live link set, sorted. The chaos engine
// uses it to realise partitions.
func (l *Lab) Links() [][2]string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out [][2]string
	for i, a := range l.order {
		for _, b := range l.order[i+1:] {
			if l.vms[a].Config == nil || l.vms[b].Config == nil {
				continue
			}
			if len(sharedSubnets(l.vms[a].Config, l.vms[b].Config)) > 0 {
				pair := [2]string{a, b}
				if b < a {
					pair = [2]string{b, a}
				}
				out = append(out, pair)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Load parses a rendered configuration tree for one (host, platform) lab
// and returns the un-started lab. Supported platforms: netkit, dynagen,
// junosphere, cbgp.
func Load(fs *render.FileSet, host, platform string) (*Lab, error) {
	l := &Lab{Host: host, Platform: platform, vms: map[string]*VM{}}
	root := host + "/" + platform + "/"
	sub := fs.WithPrefix(host + "/" + platform)
	if sub.Len() == 0 {
		return nil, fmt.Errorf("emul: no files under %s", root)
	}
	switch platform {
	case "netkit":
		if err := l.loadNetkit(sub, root); err != nil {
			return nil, err
		}
	case "dynagen":
		if err := l.loadFlatConfigs(sub, root, ".cfg", parseIOSConfig); err != nil {
			return nil, err
		}
	case "junosphere":
		if err := l.loadFlatConfigs(sub, root, ".conf", parseJunosConfig); err != nil {
			return nil, err
		}
	case "cbgp":
		if err := l.loadCBGP(sub, root); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("emul: unsupported platform %q", platform)
	}
	if len(l.order) == 0 {
		return nil, fmt.Errorf("emul: lab %s/%s has no machines", host, platform)
	}
	return l, nil
}

// loadNetkit reads lab.conf and each machine's file tree.
func (l *Lab) loadNetkit(sub *render.FileSet, root string) error {
	labConf, ok := sub.Read(root + "lab.conf")
	if !ok {
		return fmt.Errorf("emul: netkit lab has no lab.conf")
	}
	machineOrder := []string{}
	seen := map[string]bool{}
	tapIPs := map[string]netip.Addr{}
	for _, line := range strings.Split(labConf, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "LAB_") {
			continue
		}
		name, rest, ok := strings.Cut(line, "[")
		if !ok {
			continue
		}
		if !seen[name] {
			seen[name] = true
			machineOrder = append(machineOrder, name)
		}
		// TAP lines: name[ethN]=tap,<host_ip>,<vm_ip>
		if _, val, ok := strings.Cut(rest, "="); ok && strings.HasPrefix(val, "tap,") {
			parts := strings.Split(val, ",")
			if len(parts) == 3 {
				if ip, err := netip.ParseAddr(parts[2]); err == nil {
					tapIPs[name] = ip
				}
			}
		}
	}
	for _, name := range machineOrder {
		files := map[string]string{}
		prefix := root + name + "/"
		for _, p := range sub.Paths() {
			if strings.HasPrefix(p, prefix) {
				c, _ := sub.Read(p)
				files[strings.TrimPrefix(p, prefix)] = c
			}
		}
		if startup, ok := sub.Read(root + name + ".startup"); ok {
			files[name+".startup"] = startup
		}
		l.vms[name] = &VM{Name: name, Files: files, TapIP: tapIPs[name]}
		l.order = append(l.order, name)
	}
	return nil
}

// loadFlatConfigs handles single-file-per-router platforms (Dynagen IOS,
// Junosphere JunOS).
func (l *Lab) loadFlatConfigs(sub *render.FileSet, root, ext string, parse flatParser) error {
	var names []string
	for _, p := range sub.Paths() {
		rel := strings.TrimPrefix(p, root)
		if strings.Contains(rel, "/") || !strings.HasSuffix(rel, ext) {
			continue
		}
		names = append(names, strings.TrimSuffix(rel, ext))
	}
	sort.Strings(names)
	for _, name := range names {
		conf, _ := sub.Read(root + name + ext)
		l.vms[name] = &VM{Name: name, Files: map[string]string{name + ext: conf}}
		l.order = append(l.order, name)
	}
	l.flatParse = parse
	return nil
}

// loadCBGP parses the single lab.cli script. Parse problems are recorded
// as diagnostics on the lab (the whole script is one file, so they are
// known at load time); Boot decides what to do with them per mode.
func (l *Lab) loadCBGP(sub *render.FileSet, root string) error {
	script, ok := sub.Read(root + "lab.cli")
	if !ok {
		return fmt.Errorf("emul: cbgp lab has no lab.cli")
	}
	parsed, diags := parseCBGPScript(script)
	l.diags = append(l.diags, diags...)
	for _, dc := range parsed.devices {
		vm := &VM{Name: dc.Hostname, Files: map[string]string{"lab.cli": script}, Config: dc, Booted: true}
		l.vms[dc.Hostname] = vm
		l.order = append(l.order, dc.Hostname)
	}
	l.igp = parsed.igp
	return nil
}

// flatParse is the per-file parser for flat-config platforms.
type flatParser = func(name, conf string) (*routing.DeviceConfig, Diagnostics)

// ErrPartialBoot is returned (wrapped) by a lenient Boot that quarantined
// at least one device: the surviving topology is up and measurable, but
// the lab is degraded. Inspect Quarantined() and Diagnostics() for the
// report.
var ErrPartialBoot = errors.New("emul: partial boot: devices quarantined")

// BootOptions parameterises Boot.
type BootOptions struct {
	// MaxBGPRounds bounds control-plane convergence (<= 0 = default).
	MaxBGPRounds int
	// ConvergeTimeout bounds each engine run's wall-clock time (0 =
	// unbounded). Deployments propagate their per-attempt timeout here so a
	// hung convergence cannot stall a whole pool.
	ConvergeTimeout time.Duration
	// Lenient selects degraded-boot semantics: devices whose configs carry
	// error-level diagnostics are quarantined and the surviving topology
	// boots, returning ErrPartialBoot. When false (strict, the default) any
	// error-level diagnostic fails the boot with a *DiagnosticError that
	// lists every problem found in the pass.
	Lenient bool
	// Incremental enables incremental reconvergence: delta SPF in the IGP
	// domains, BGP trajectory replay, and data-plane node reuse. Off by
	// default (full recompute is the correctness oracle); when on, every
	// converge still produces byte-identical routing tables, verdicts and
	// events.
	Incremental bool
	// Obs, when set, receives incremental-convergence counters
	// (spf_delta_recomputes, bgp_dirty_prefixes, rounds_skipped, ...).
	Obs *obs.Collector
	// Shards is the worker count for sharded BGP round evaluation (<= 1 =
	// sequential sweep, the default). Any value produces byte-identical
	// results; > 1 evaluates per-AS shards concurrently inside each round.
	Shards int
}

// Start boots every machine (parsing its configuration), converges OSPF,
// runs BGP to convergence or detected oscillation, and builds the data
// plane. maxBGPRounds <= 0 selects the default. Start is strict: one bad
// config fails the whole boot (but still reports every diagnostic found).
func (l *Lab) Start(maxBGPRounds int) error {
	return l.Boot(BootOptions{MaxBGPRounds: maxBGPRounds})
}

// Boot boots the lab under the given options. Strict mode fails on any
// error-level config diagnostic; lenient mode quarantines the offending
// devices, boots the survivors, and returns ErrPartialBoot (wrapped) so
// measurement and chaos runs can proceed on the degraded lab.
func (l *Lab) Boot(opts BootOptions) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.started {
		return fmt.Errorf("emul: lab already started")
	}
	l.logf("starting lab %s/%s (%d machines)", l.Host, l.Platform, len(l.order))

	// Parse every machine's configuration, accumulating all diagnostics
	// before deciding anything: one boot reports every problem at once.
	for _, name := range l.order {
		vm := l.vms[name]
		if vm.Config != nil { // C-BGP devices parse at Load
			continue
		}
		dc, diags := l.bootVM(vm)
		l.diags = append(l.diags, diags...)
		if !diags.HasErrors() {
			vm.Config = dc
		}
	}

	// Partition error diagnostics into per-device (quarantinable) and
	// lab-wide (fatal even in lenient mode: nothing to quarantine).
	badDevice := map[string]bool{}
	labWide := false
	for _, d := range l.diags {
		if d.Severity != SevError {
			continue
		}
		if d.Device == "" {
			labWide = true
			continue
		}
		badDevice[d.Device] = true
	}
	if len(badDevice) > 0 || labWide {
		if !opts.Lenient || labWide {
			return &DiagnosticError{Diags: l.diags.Sorted()}
		}
		for name := range badDevice {
			if _, ok := l.vms[name]; !ok {
				// Diagnostic for a device that is not a lab machine (e.g. a
				// renamed hostname): nothing to quarantine.
				return &DiagnosticError{Diags: l.diags.Sorted()}
			}
		}
		if len(badDevice) == len(l.order) {
			// Nothing would survive; a zero-machine "partial" boot is a
			// failed boot.
			return &DiagnosticError{Diags: l.diags.Sorted()}
		}
		l.quarantined = make([]string, 0, len(badDevice))
		for name := range badDevice {
			l.quarantined = append(l.quarantined, name)
			vm := l.vms[name]
			vm.Config = nil
			vm.Booted = false
			l.logf("machine %s QUARANTINED (%d config diagnostics)", name, len(l.diags.ForDevice(name)))
		}
		sort.Strings(l.quarantined)
	}

	for _, name := range l.order {
		vm := l.vms[name]
		if vm.Config == nil {
			continue
		}
		vm.Booted = true
		l.logf("machine %s booted (%d interfaces)", name, len(vm.Config.Interfaces))
	}
	// Snapshot every surviving machine's boot-time config so incidents are
	// reversible (RestoreLink/RestoreNode re-install from these).
	l.baseline = make(map[string]*routing.DeviceConfig, len(l.order))
	for _, name := range l.order {
		if l.vms[name].Config != nil {
			l.baseline[name] = cloneDeviceConfig(l.vms[name].Config)
		}
	}
	l.budget = routing.ConvergenceBudget{MaxBGPRounds: opts.MaxBGPRounds, Timeout: opts.ConvergeTimeout}
	l.incremental = opts.Incremental
	l.obs = opts.Obs
	l.shards = opts.Shards
	if err := l.converge(); err != nil {
		return err
	}
	l.started = true
	if len(l.quarantined) > 0 {
		return fmt.Errorf("%w: %d of %d machines (%s)", ErrPartialBoot,
			len(l.quarantined), len(l.order), strings.Join(l.quarantined, ", "))
	}
	return nil
}

// converge (re)runs the control plane and rebuilds the data plane over the
// machines' current configurations; called at Start and after incident
// injection (FailLink/FailNode).
func (l *Lab) converge() error {
	// Quarantined machines (nil Config) are not part of the running
	// topology: the control plane and data plane build over the survivors.
	devices := l.liveDevices()
	// Changed-source sets harvested from the incremental engines; nil means
	// "unknown — treat everything as changed".
	var ospfChanged, isisChanged, bgpChanged map[string]bool
	// IGP convergence. C-BGP labs carry a pre-parsed link-graph IGP that
	// is preserved across reconvergence. OSPF and IS-IS devices each get
	// their own link-state domain (§7: IS-IS as the substituted IGP).
	if l.Platform != "cbgp" {
		// Incremental mode keeps the domains alive across converges so the
		// delta-SPF path can diff link state against the previous run.
		if l.incremental && l.domain != nil && l.domain.Incremental() {
			l.domain.Rebind(devices)
		} else {
			l.domain = routing.NewOSPFDomain(devices)
			l.domain.SetIncremental(l.incremental)
		}
		l.domain.SetPerturber(l.pert)
		if err := l.domain.Converge(); err != nil {
			return fmt.Errorf("emul: ospf: %w", err)
		}
		if l.incremental && l.isis != nil && l.isis.Incremental() {
			l.isis.RebindISIS(devices)
		} else {
			l.isis = routing.NewISISDomain(devices)
			l.isis.SetIncremental(l.incremental)
		}
		l.isis.SetPerturber(l.pert)
		if err := l.isis.Converge(); err != nil {
			return fmt.Errorf("emul: isis: %w", err)
		}
		if l.incremental {
			ospfChanged = l.domain.ChangedSources()
			isisChanged = l.isis.ChangedSources()
			for _, d := range []*routing.OSPFDomain{l.domain, l.isis} {
				if rec, skip, delta := d.DeltaStats(); delta {
					l.obs.Add(obs.CounterSPFDeltaRecomputes, int64(rec))
					l.obs.Add(obs.CounterSPFSourcesSkipped, int64(skip))
				}
			}
		}
		comp := routing.NewCompositeIGP()
		for _, dc := range devices {
			switch {
			case dc.OSPF != nil:
				comp.AddDevice(dc, l.domain)
			case dc.ISIS != nil:
				comp.AddDevice(dc, l.isis)
			default:
				comp.AddDevice(dc, nil)
			}
		}
		l.igp = comp
		l.logf("igp converged")
	}
	// BGP.
	profile := routing.ProfileFor(syntaxOfPlatform(l.Platform))
	bgp, err := routing.NewBGPEngine(devices, func(string) routing.VendorProfile { return profile }, l.igp)
	if err != nil {
		return fmt.Errorf("emul: bgp: %w", err)
	}
	// Labs model asynchronous routers: sequential (Gauss-Seidel)
	// processing, so a detected oscillation is a genuine RFC 3345-class
	// persistent one, not a lockstep-timing artifact.
	bgp.SetSequential(true)
	bgp.SetPerturber(l.pert)
	bgp.SetShards(l.shards)
	if l.incremental {
		// Speakers whose IGP routes moved see different next-hop costs, so
		// they must recompute even if their own configs are untouched.
		extraDirty := map[string]bool{}
		for h := range ospfChanged {
			extraDirty[h] = true
		}
		for h := range isisChanged {
			extraDirty[h] = true
		}
		bgp.EnableIncremental(l.bgpReplay, extraDirty)
	}
	l.bgp = bgp
	ctx, cancel := l.budget.Context()
	l.bgpResult = bgp.RunContext(ctx, l.budget.MaxBGPRounds)
	cancel()
	l.logBGPResult()
	for _, down := range bgp.SessionsDown() {
		l.logf("bgp session down: %s", down)
	}
	if l.incremental {
		restored, dirtyPfx, skipped := bgp.IncrementalStats()
		l.obs.Add(obs.CounterBGPSpeakersRestored, restored)
		l.obs.Add(obs.CounterBGPDirtyPrefixes, dirtyPfx)
		l.obs.Add(obs.CounterRoundsSkipped, skipped)
		bgpChanged = bgp.ChangedSpeakers()
		l.bgpReplay = bgp.ReplayLog()
	}
	if l.shards > 1 {
		parallelRounds, crossAdverts := bgp.ShardStats()
		l.obs.Add(obs.CounterBGPShards, int64(bgp.ShardCount()))
		l.obs.Add(obs.CounterShardRoundsParallel, parallelRounds)
		l.obs.Add(obs.CounterCrossShardAdverts, crossAdverts)
	}
	// Data plane (not for C-BGP, which is a route solver).
	if l.Platform != "cbgp" {
		reuse := l.reusableNodes(devices, ospfChanged, isisChanged, bgpChanged)
		if err := l.buildDataplane(devices, reuse); err != nil {
			return err
		}
		l.logf("data plane ready")
	}
	if l.incremental {
		sigs := make(map[string]uint64, len(devices))
		for _, dc := range devices {
			sigs[dc.Hostname] = routing.ConfigSignature(dc)
		}
		l.prevSigs = sigs
	}
	return nil
}

// reusableNodes decides which data-plane nodes can carry over from the
// previous converge unchanged: a node is reusable only when its device
// config hashes identically AND none of the three route sources (OSPF,
// IS-IS, BGP) reported a changed selection for it. nil changed-sets mean
// "unknown" and veto reuse for every node, as does full (non-incremental)
// mode. Nodes are immutable after construction, so sharing them across
// network generations is safe for concurrent readers.
func (l *Lab) reusableNodes(devices []*routing.DeviceConfig, ospfChanged, isisChanged, bgpChanged map[string]bool) map[string]*dataplane.Node {
	if !l.incremental || l.net == nil || l.prevSigs == nil || bgpChanged == nil {
		return nil
	}
	if (l.domain != nil && ospfChanged == nil) || (l.isis != nil && isisChanged == nil) {
		return nil
	}
	reuse := map[string]*dataplane.Node{}
	for _, dc := range devices {
		h := dc.Hostname
		if ospfChanged[h] || isisChanged[h] || bgpChanged[h] {
			continue
		}
		if sig, ok := l.prevSigs[h]; !ok || sig != routing.ConfigSignature(dc) {
			continue
		}
		if node, ok := l.net.Node(h); ok {
			reuse[h] = node
		}
	}
	return reuse
}

// liveDevices lists the configs of every machine that is part of the
// running topology (quarantined machines carry nil Configs), in lab order.
// Callers hold the lock.
func (l *Lab) liveDevices() []*routing.DeviceConfig {
	var devices []*routing.DeviceConfig
	for _, name := range l.order {
		if l.vms[name].Config != nil {
			devices = append(devices, l.vms[name].Config)
		}
	}
	return devices
}

// logBGPResult records the outcome of the most recent BGP run in the event
// log. Callers hold the write lock.
func (l *Lab) logBGPResult() {
	switch {
	case l.bgpResult.Cancelled:
		l.logf("bgp run CANCELLED after %d rounds (budget timeout %v)", l.bgpResult.Rounds, l.budget.Timeout)
	case l.bgpResult.Converged:
		l.logf("bgp converged in %d rounds (%d sessions)", l.bgpResult.Rounds, l.bgp.SessionsUp())
	case l.bgpResult.Oscillating:
		l.logf("bgp OSCILLATING after %d rounds (cycle %d)", l.bgpResult.Rounds, l.bgpResult.CycleLen)
	}
}

func syntaxOfPlatform(platform string) string {
	switch platform {
	case "dynagen":
		return "ios"
	case "junosphere":
		return "junos"
	case "cbgp":
		return "cbgp"
	default:
		return "quagga"
	}
}

// bootVM parses a machine's configuration files per platform, returning
// the recovered config plus every diagnostic found in the machine's files.
func (l *Lab) bootVM(vm *VM) (*routing.DeviceConfig, Diagnostics) {
	switch l.Platform {
	case "netkit":
		return parseQuaggaVM(vm.Name, vm.Files)
	case "dynagen":
		return l.flatParse(vm.Name, vm.Files[vm.Name+".cfg"])
	case "junosphere":
		return l.flatParse(vm.Name, vm.Files[vm.Name+".conf"])
	}
	return nil, Diagnostics{{Severity: SevError, Device: vm.Name,
		Message: fmt.Sprintf("cannot boot on platform %q", l.Platform)}}
}

// buildDataplane installs connected, OSPF and BGP routes into per-VM FIBs.
// reuse (may be nil) maps hostnames to nodes from the previous network
// generation whose inputs are provably unchanged; those are re-added as-is
// instead of being rebuilt.
func (l *Lab) buildDataplane(devices []*routing.DeviceConfig, reuse map[string]*dataplane.Node) error {
	net := dataplane.NewNetwork()
	for _, dc := range devices {
		if old, ok := reuse[dc.Hostname]; ok {
			if err := net.AddNode(old); err != nil {
				return err
			}
			l.obs.Add(obs.CounterFIBNodesReused, 1)
			continue
		}
		node := dataplane.NewNode(dc.Hostname)
		// Collect candidate routes into a RIB so administrative distance is
		// honoured (connected < OSPF < BGP): a BGP-originated loopback /32
		// must not shadow the OSPF route that actually resolves it.
		rib := routing.NewRIB()
		for _, ic := range dc.Interfaces {
			node.AddAddr(ic.Addr, ic.Name)
			rib.Install(routing.Route{Prefix: ic.Prefix, Origin: routing.OriginConnected, OutIf: ic.Name})
		}
		if dc.Gateway.IsValid() {
			rib.Install(routing.Route{
				Prefix:  netip.MustParsePrefix("0.0.0.0/0"),
				NextHop: dc.Gateway,
				Origin:  routing.OriginBGP, // static default: lowest preference
				Metric:  1,
			})
		}
		if l.domain != nil {
			for _, rt := range l.domain.Routes(dc.Hostname) {
				rib.Install(rt)
			}
		}
		if l.isis != nil {
			for _, rt := range l.isis.Routes(dc.Hostname) {
				rib.Install(rt)
			}
		}
		if l.bgp != nil {
			for _, rt := range l.bgp.BestRoutes(dc.Hostname) {
				if rt.Local || !rt.NextHop.IsValid() {
					continue
				}
				rib.Install(routing.Route{Prefix: rt.Prefix, Origin: routing.OriginBGP, NextHop: rt.NextHop})
			}
		}
		for _, p := range rib.Prefixes() {
			best, _ := rib.Best(p)
			entry := dataplane.FIBEntry{Prefix: best.Prefix, NextHop: best.NextHop, OutIf: best.OutIf, Connected: best.Origin == routing.OriginConnected}
			if err := node.FIB.Insert(entry); err != nil {
				return fmt.Errorf("emul: %s: %w", dc.Hostname, err)
			}
		}
		if err := net.AddNode(node); err != nil {
			return err
		}
	}
	l.net = net
	return nil
}
