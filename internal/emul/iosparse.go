package emul

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// parseIOSConfig recovers a DeviceConfig from a rendered IOS configuration
// (one file per router, as produced for the Dynagen platform). Malformed
// statements are recorded as diagnostics and the parse continues with the
// next statement; a section whose header is unusable (e.g. `router bgp`
// with a bad ASN) is skipped wholesale so its body cannot be
// misattributed.
func parseIOSConfig(hostname, conf string) (*routing.DeviceConfig, Diagnostics) {
	dc := &routing.DeviceConfig{Hostname: hostname}
	sink := &diagSink{device: hostname, file: hostname + ".cfg"}
	var bgp *routing.BGPConfig
	var ospf *routing.OSPFConfig
	type rmapRef struct {
		nbr  netip.Addr
		name string
		out  bool
		line int
	}
	var rmapRefs []rmapRef
	rmapValues := map[string][2]int{}
	nbrIndex := map[netip.Addr]int{}
	getNbr := func(addr netip.Addr) *routing.BGPNeighbor {
		if i, ok := nbrIndex[addr]; ok {
			return &bgp.Neighbors[i]
		}
		bgp.Neighbors = append(bgp.Neighbors, routing.BGPNeighbor{Addr: addr})
		nbrIndex[addr] = len(bgp.Neighbors) - 1
		return &bgp.Neighbors[len(bgp.Neighbors)-1]
	}

	section := "" // "", "interface", "ospf", "bgp", "route-map"
	curIface := -1
	curRmap := ""
	isLoopback := false

	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimRight(raw, " \r")
		trimmed := strings.TrimSpace(line)
		fields := strings.Fields(trimmed)
		if len(fields) == 0 || trimmed == "!" {
			continue
		}
		fail := func(msg string) {
			sink.errorf(lineNo+1, "%s in %q", msg, trimmed)
		}
		// Top-level statements reset the section.
		if !strings.HasPrefix(line, " ") {
			section = ""
			curIface = -1
			switch fields[0] {
			case "hostname":
				if len(fields) >= 2 {
					dc.Hostname = fields[1]
				}
			case "interface":
				if len(fields) < 2 {
					fail("interface without name")
					continue
				}
				section = "interface"
				isLoopback = strings.HasPrefix(strings.ToLower(fields[1]), "lo")
				if !isLoopback {
					dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{Name: fields[1], Cost: 1})
					curIface = len(dc.Interfaces) - 1
				}
			case "router":
				if len(fields) < 2 {
					fail("bare router")
					continue
				}
				switch fields[1] {
				case "ospf":
					pid := 1
					if len(fields) >= 3 {
						pid, _ = strconv.Atoi(fields[2])
					}
					ospf = &routing.OSPFConfig{ProcessID: pid}
					section = "ospf"
				case "bgp":
					if len(fields) < 3 {
						fail("router bgp without ASN")
						continue
					}
					asn, err := strconv.Atoi(fields[2])
					if err != nil {
						fail("bad ASN")
						continue
					}
					bgp = &routing.BGPConfig{ASN: asn}
					section = "bgp"
				}
			case "route-map":
				if len(fields) < 2 {
					fail("bare route-map")
					continue
				}
				curRmap = fields[1]
				if _, ok := rmapValues[curRmap]; !ok {
					rmapValues[curRmap] = [2]int{}
				}
				section = "route-map"
			}
			continue
		}
		// Indented statements belong to the current section.
		switch section {
		case "interface":
			switch {
			case fields[0] == "ip" && len(fields) >= 4 && fields[1] == "address":
				addr, err := netip.ParseAddr(fields[2])
				if err != nil {
					fail("bad address")
					continue
				}
				bits, err := maskBits(fields[3])
				if err != nil {
					fail(err.Error())
					continue
				}
				if isLoopback {
					dc.Loopback = addr
					dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
						Name: "lo", Addr: addr, Prefix: netip.PrefixFrom(addr, 32), Cost: 1,
					})
				} else if curIface >= 0 {
					dc.Interfaces[curIface].Addr = addr
					dc.Interfaces[curIface].Prefix = netip.PrefixFrom(addr, bits).Masked()
				}
			case fields[0] == "ip" && len(fields) == 4 && fields[1] == "ospf" && fields[2] == "cost":
				cost, err := strconv.Atoi(fields[3])
				if err != nil {
					fail("bad cost")
					continue
				}
				if curIface >= 0 {
					dc.Interfaces[curIface].Cost = cost
				}
			}
		case "ospf":
			if fields[0] == "passive-interface" && len(fields) == 2 {
				for i := range dc.Interfaces {
					if dc.Interfaces[i].Name == fields[1] {
						dc.Interfaces[i].Passive = true
					}
				}
			}
			if fields[0] == "network" && len(fields) == 5 && fields[3] == "area" {
				base, err := netip.ParseAddr(fields[1])
				if err != nil {
					fail("bad network address")
					continue
				}
				bits, err := wildcardBits(fields[2])
				if err != nil {
					fail(err.Error())
					continue
				}
				area, err := strconv.Atoi(fields[4])
				if err != nil {
					fail("bad area")
					continue
				}
				ospf.Networks = append(ospf.Networks, routing.OSPFNetwork{
					Prefix: netip.PrefixFrom(base, bits).Masked(), Area: area,
				})
			}
		case "bgp":
			switch {
			case fields[0] == "bgp" && len(fields) == 3 && fields[1] == "router-id":
				rid, err := netip.ParseAddr(fields[2])
				if err != nil {
					fail("bad router-id")
					continue
				}
				bgp.RouterID = rid
			case fields[0] == "network" && len(fields) == 4 && fields[2] == "mask":
				base, err := netip.ParseAddr(fields[1])
				if err != nil {
					fail("bad network")
					continue
				}
				bits, err := maskBits(fields[3])
				if err != nil {
					fail(err.Error())
					continue
				}
				bgp.Networks = append(bgp.Networks, netip.PrefixFrom(base, bits).Masked())
			case fields[0] == "neighbor" && len(fields) >= 3:
				addr, err := netip.ParseAddr(fields[1])
				if err != nil {
					fail("bad neighbor")
					continue
				}
				nbr := getNbr(addr)
				switch fields[2] {
				case "remote-as":
					if len(fields) < 4 {
						fail("remote-as without ASN")
						continue
					}
					asn, err := strconv.Atoi(fields[3])
					if err != nil {
						fail("bad remote-as")
						continue
					}
					nbr.RemoteASN = asn
				case "update-source":
					if len(fields) < 4 {
						fail("update-source without interface")
						continue
					}
					nbr.UpdateSource = fields[3]
				case "route-reflector-client":
					nbr.RRClient = true
				case "description":
					nbr.Description = strings.Join(fields[3:], " ")
				case "route-map":
					if len(fields) < 4 {
						fail("route-map without name")
						continue
					}
					rmapRefs = append(rmapRefs, rmapRef{addr, fields[3], len(fields) > 4 && fields[4] == "out", lineNo + 1})
				}
			}
		case "route-map":
			if fields[0] == "set" && len(fields) >= 3 {
				v, err := strconv.Atoi(fields[len(fields)-1])
				if err != nil {
					fail("bad set value")
					continue
				}
				vals := rmapValues[curRmap]
				switch fields[1] {
				case "metric":
					vals[0] = v
				case "local-preference":
					vals[1] = v
				}
				rmapValues[curRmap] = vals
			}
		}
	}
	if bgp != nil {
		for _, ref := range rmapRefs {
			vals, ok := rmapValues[ref.name]
			if !ok {
				sink.errorf(ref.line, "undefined route-map %q", ref.name)
				continue
			}
			nbr := getNbr(ref.nbr)
			if ref.out {
				nbr.MEDOut = vals[0]
			} else {
				nbr.LocalPrefIn = vals[1]
			}
		}
	}
	dc.OSPF = ospf
	dc.BGP = bgp
	if !sink.diags.HasErrors() {
		if err := dc.Validate(); err != nil {
			sink.errorf(0, "%v", err)
		}
	}
	return dc, sink.diags
}

// wildcardBits converts an IOS wildcard mask (0.0.0.3) to a prefix length.
func wildcardBits(wc string) (int, error) {
	a, err := netip.ParseAddr(wc)
	if err != nil || !a.Is4() {
		return 0, fmt.Errorf("bad wildcard %q", wc)
	}
	b := a.As4()
	v := ^(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	bits := 0
	for v&0x80000000 != 0 {
		bits++
		v <<= 1
	}
	if v != 0 {
		return 0, fmt.Errorf("non-contiguous wildcard %q", wc)
	}
	return bits, nil
}
