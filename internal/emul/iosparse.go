package emul

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// parseIOSConfig recovers a DeviceConfig from a rendered IOS configuration
// (one file per router, as produced for the Dynagen platform).
func parseIOSConfig(hostname, conf string) (*routing.DeviceConfig, error) {
	dc := &routing.DeviceConfig{Hostname: hostname}
	var bgp *routing.BGPConfig
	var ospf *routing.OSPFConfig
	type rmapRef struct {
		nbr  netip.Addr
		name string
		out  bool
	}
	var rmapRefs []rmapRef
	rmapValues := map[string][2]int{}
	nbrIndex := map[netip.Addr]int{}
	getNbr := func(addr netip.Addr) *routing.BGPNeighbor {
		if i, ok := nbrIndex[addr]; ok {
			return &bgp.Neighbors[i]
		}
		bgp.Neighbors = append(bgp.Neighbors, routing.BGPNeighbor{Addr: addr})
		nbrIndex[addr] = len(bgp.Neighbors) - 1
		return &bgp.Neighbors[len(bgp.Neighbors)-1]
	}

	section := "" // "", "interface", "ospf", "bgp", "route-map"
	curIface := -1
	curRmap := ""
	isLoopback := false

	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimRight(raw, " \r")
		trimmed := strings.TrimSpace(line)
		fields := strings.Fields(trimmed)
		if len(fields) == 0 || trimmed == "!" {
			continue
		}
		fail := func(msg string) error {
			return fmt.Errorf("emul: %s ios line %d: %s in %q", hostname, lineNo+1, msg, trimmed)
		}
		// Top-level statements reset the section.
		if !strings.HasPrefix(line, " ") {
			section = ""
			curIface = -1
			switch fields[0] {
			case "hostname":
				if len(fields) >= 2 {
					dc.Hostname = fields[1]
				}
			case "interface":
				if len(fields) < 2 {
					return nil, fail("interface without name")
				}
				section = "interface"
				isLoopback = strings.HasPrefix(strings.ToLower(fields[1]), "lo")
				if !isLoopback {
					dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{Name: fields[1], Cost: 1})
					curIface = len(dc.Interfaces) - 1
				}
			case "router":
				if len(fields) < 2 {
					return nil, fail("bare router")
				}
				switch fields[1] {
				case "ospf":
					pid := 1
					if len(fields) >= 3 {
						pid, _ = strconv.Atoi(fields[2])
					}
					ospf = &routing.OSPFConfig{ProcessID: pid}
					section = "ospf"
				case "bgp":
					if len(fields) < 3 {
						return nil, fail("router bgp without ASN")
					}
					asn, err := strconv.Atoi(fields[2])
					if err != nil {
						return nil, fail("bad ASN")
					}
					bgp = &routing.BGPConfig{ASN: asn}
					section = "bgp"
				}
			case "route-map":
				if len(fields) < 2 {
					return nil, fail("bare route-map")
				}
				curRmap = fields[1]
				if _, ok := rmapValues[curRmap]; !ok {
					rmapValues[curRmap] = [2]int{}
				}
				section = "route-map"
			}
			continue
		}
		// Indented statements belong to the current section.
		switch section {
		case "interface":
			switch {
			case fields[0] == "ip" && len(fields) >= 4 && fields[1] == "address":
				addr, err := netip.ParseAddr(fields[2])
				if err != nil {
					return nil, fail("bad address")
				}
				bits, err := maskBits(fields[3])
				if err != nil {
					return nil, fail(err.Error())
				}
				if isLoopback {
					dc.Loopback = addr
					dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
						Name: "lo", Addr: addr, Prefix: netip.PrefixFrom(addr, 32), Cost: 1,
					})
				} else if curIface >= 0 {
					dc.Interfaces[curIface].Addr = addr
					dc.Interfaces[curIface].Prefix = netip.PrefixFrom(addr, bits).Masked()
				}
			case fields[0] == "ip" && len(fields) == 4 && fields[1] == "ospf" && fields[2] == "cost":
				cost, err := strconv.Atoi(fields[3])
				if err != nil {
					return nil, fail("bad cost")
				}
				if curIface >= 0 {
					dc.Interfaces[curIface].Cost = cost
				}
			}
		case "ospf":
			if fields[0] == "passive-interface" && len(fields) == 2 {
				for i := range dc.Interfaces {
					if dc.Interfaces[i].Name == fields[1] {
						dc.Interfaces[i].Passive = true
					}
				}
			}
			if fields[0] == "network" && len(fields) == 5 && fields[3] == "area" {
				base, err := netip.ParseAddr(fields[1])
				if err != nil {
					return nil, fail("bad network address")
				}
				bits, err := wildcardBits(fields[2])
				if err != nil {
					return nil, fail(err.Error())
				}
				area, err := strconv.Atoi(fields[4])
				if err != nil {
					return nil, fail("bad area")
				}
				ospf.Networks = append(ospf.Networks, routing.OSPFNetwork{
					Prefix: netip.PrefixFrom(base, bits).Masked(), Area: area,
				})
			}
		case "bgp":
			switch {
			case fields[0] == "bgp" && len(fields) == 3 && fields[1] == "router-id":
				rid, err := netip.ParseAddr(fields[2])
				if err != nil {
					return nil, fail("bad router-id")
				}
				bgp.RouterID = rid
			case fields[0] == "network" && len(fields) == 4 && fields[2] == "mask":
				base, err := netip.ParseAddr(fields[1])
				if err != nil {
					return nil, fail("bad network")
				}
				bits, err := maskBits(fields[3])
				if err != nil {
					return nil, fail(err.Error())
				}
				bgp.Networks = append(bgp.Networks, netip.PrefixFrom(base, bits).Masked())
			case fields[0] == "neighbor" && len(fields) >= 3:
				addr, err := netip.ParseAddr(fields[1])
				if err != nil {
					return nil, fail("bad neighbor")
				}
				nbr := getNbr(addr)
				switch fields[2] {
				case "remote-as":
					asn, err := strconv.Atoi(fields[3])
					if err != nil {
						return nil, fail("bad remote-as")
					}
					nbr.RemoteASN = asn
				case "update-source":
					nbr.UpdateSource = fields[3]
				case "route-reflector-client":
					nbr.RRClient = true
				case "description":
					nbr.Description = strings.Join(fields[3:], " ")
				case "route-map":
					rmapRefs = append(rmapRefs, rmapRef{addr, fields[3], len(fields) > 4 && fields[4] == "out"})
				}
			}
		case "route-map":
			if fields[0] == "set" && len(fields) >= 3 {
				v, err := strconv.Atoi(fields[len(fields)-1])
				if err != nil {
					return nil, fail("bad set value")
				}
				vals := rmapValues[curRmap]
				switch fields[1] {
				case "metric":
					vals[0] = v
				case "local-preference":
					vals[1] = v
				}
				rmapValues[curRmap] = vals
			}
		}
	}
	if bgp != nil {
		for _, ref := range rmapRefs {
			vals, ok := rmapValues[ref.name]
			if !ok {
				return nil, fmt.Errorf("emul: %s: undefined route-map %q", hostname, ref.name)
			}
			nbr := getNbr(ref.nbr)
			if ref.out {
				nbr.MEDOut = vals[0]
			} else {
				nbr.LocalPrefIn = vals[1]
			}
		}
	}
	dc.OSPF = ospf
	dc.BGP = bgp
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	return dc, nil
}

// wildcardBits converts an IOS wildcard mask (0.0.0.3) to a prefix length.
func wildcardBits(wc string) (int, error) {
	a, err := netip.ParseAddr(wc)
	if err != nil || !a.Is4() {
		return 0, fmt.Errorf("bad wildcard %q", wc)
	}
	b := a.As4()
	v := ^(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	bits := 0
	for v&0x80000000 != 0 {
		bits++
		v <<= 1
	}
	if v != 0 {
		return 0, fmt.Errorf("non-contiguous wildcard %q", wc)
	}
	return bits, nil
}
