package emul

import (
	"fmt"
	"net/netip"
	"sort"

	"autonetkit/internal/routing"
)

// Incident injection (paper §8: "creating tools to emulate workflow, or
// incidents"). Failing a link or a machine removes the affected interfaces
// from the booted configurations and re-converges the control plane, so
// subsequent measurements observe the post-incident network — the
// what-if experiments the paper motivates.
//
// Incidents are reversible: Start snapshots every machine's boot-time
// DeviceConfig, and RestoreLink/RestoreNode re-install interfaces from
// those snapshots, re-converging back to the original state. All incident
// entry points take the lab's write lock, so they are safe to call while a
// measurement client probes the lab concurrently.

// incidentPrecheck validates the common incident preconditions. Callers
// hold the write lock.
func (l *Lab) incidentPrecheck() error {
	if !l.started {
		return fmt.Errorf("emul: lab not started")
	}
	if l.Platform == "cbgp" {
		return fmt.Errorf("emul: incident injection is not supported on the C-BGP route solver")
	}
	return nil
}

// liveVM resolves a machine that is part of the running topology; a
// machine quarantined by a lenient boot cannot take part in incidents.
func (l *Lab) liveVM(name string) (*VM, error) {
	vm, ok := l.vms[name]
	if !ok {
		return nil, fmt.Errorf("emul: no machine %q", name)
	}
	if vm.Config == nil {
		return nil, fmt.Errorf("emul: machine %q was quarantined at boot", name)
	}
	return vm, nil
}

func (l *Lab) vmPair(a, b string) (*VM, *VM, error) {
	va, err := l.liveVM(a)
	if err != nil {
		return nil, nil, err
	}
	vb, err := l.liveVM(b)
	if err != nil {
		return nil, nil, err
	}
	return va, vb, nil
}

// FailLink brings down the link between two machines: both interfaces on
// every subnet the machines currently share are removed and the lab
// re-converges. Each failed subnet is logged individually.
func (l *Lab) FailLink(a, b string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failLink(a, b, netip.Prefix{})
}

// FailLinkSubnet fails only the given shared subnet between two machines —
// for parallel links where one circuit, not the whole adjacency, goes down.
func (l *Lab) FailLinkSubnet(a, b string, subnet netip.Prefix) error {
	if !subnet.IsValid() {
		return fmt.Errorf("emul: invalid subnet")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failLink(a, b, subnet)
}

// failLink fails all shared subnets, or just `only` when it is valid.
// Callers hold the write lock.
func (l *Lab) failLink(a, b string, only netip.Prefix) error {
	if err := l.incidentPrecheck(); err != nil {
		return err
	}
	va, vb, err := l.vmPair(a, b)
	if err != nil {
		return err
	}
	shared := sharedSubnets(va.Config, vb.Config)
	if len(shared) == 0 {
		return fmt.Errorf("emul: %s and %s share no subnet", a, b)
	}
	if only.IsValid() {
		found := false
		for _, p := range shared {
			if p == only {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("emul: %s and %s do not share subnet %v", a, b, only)
		}
		shared = []netip.Prefix{only}
	}
	l.incidentSeq++
	for _, p := range shared {
		removeSubnet(va.Config, p)
		removeSubnet(vb.Config, p)
		l.logf("INCIDENT #%d: link %s -- %s (%v) failed", l.incidentSeq, a, b, p)
	}
	return l.converge()
}

// RestoreLink reverses FailLink: every boot-time shared subnet between the
// two machines that is currently down is re-installed on both ends from
// the Start snapshot, and the lab re-converges. Restoring a link that is
// not failed is an error.
func (l *Lab) RestoreLink(a, b string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.incidentPrecheck(); err != nil {
		return err
	}
	va, vb, err := l.vmPair(a, b)
	if err != nil {
		return err
	}
	ba, bb := l.baseline[a], l.baseline[b]
	shared := sharedSubnets(ba, bb)
	if len(shared) == 0 {
		return fmt.Errorf("emul: %s and %s shared no subnet at boot", a, b)
	}
	var missing []netip.Prefix
	for _, p := range shared {
		if !hasSubnet(va.Config, p) || !hasSubnet(vb.Config, p) {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return fmt.Errorf("emul: link %s -- %s is not failed", a, b)
	}
	l.incidentSeq++
	for _, p := range missing {
		restoreSubnet(va.Config, ba, p)
		restoreSubnet(vb.Config, bb, p)
		l.logf("INCIDENT #%d: link %s -- %s (%v) restored", l.incidentSeq, a, b, p)
	}
	return l.converge()
}

// FailNode takes a machine down entirely: all its data-plane interfaces
// are removed (the loopback stays, unreachable), and the lab re-converges.
func (l *Lab) FailNode(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.incidentPrecheck(); err != nil {
		return err
	}
	vm, err := l.liveVM(name)
	if err != nil {
		return err
	}
	var kept []routing.InterfaceConfig
	removed := 0
	for _, ic := range vm.Config.Interfaces {
		if ic.Name == "lo" {
			kept = append(kept, ic)
			continue
		}
		removed++
	}
	if removed == 0 {
		return fmt.Errorf("emul: %s has no data-plane interfaces to fail", name)
	}
	vm.Config.Interfaces = kept
	l.incidentSeq++
	l.logf("INCIDENT #%d: machine %s down (%d interfaces removed)", l.incidentSeq, name, removed)
	return l.converge()
}

// RestoreNode reverses FailNode (and the machine's side of failed links):
// the machine's full boot-time interface set is re-installed from the
// Start snapshot and the lab re-converges. Restoring an intact machine is
// an error.
func (l *Lab) RestoreNode(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.incidentPrecheck(); err != nil {
		return err
	}
	vm, err := l.liveVM(name)
	if err != nil {
		return err
	}
	base := l.baseline[name]
	restored := len(base.Interfaces) - len(vm.Config.Interfaces)
	if restored <= 0 {
		return fmt.Errorf("emul: machine %s is not failed", name)
	}
	vm.Config.Interfaces = append([]routing.InterfaceConfig(nil), base.Interfaces...)
	l.incidentSeq++
	l.logf("INCIDENT #%d: machine %s restored (%d interfaces re-installed)", l.incidentSeq, name, restored)
	return l.converge()
}

// FailNodes takes a whole batch of machines down under one lock and ONE
// re-convergence — the emulation-host-failure primitive: when a substrate
// host dies, every VM it carried goes dark at once, and converging per VM
// would cost k convergences for a k-VM host. Machines already down are
// skipped (their interfaces are gone already). Names are processed in
// sorted order for deterministic logs.
func (l *Lab) FailNodes(names []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.incidentPrecheck(); err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("emul: empty node batch")
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, name := range sorted {
		if _, err := l.liveVM(name); err != nil {
			return err
		}
	}
	l.incidentSeq++
	downed := 0
	for _, name := range sorted {
		vm := l.vms[name]
		var kept []routing.InterfaceConfig
		removed := 0
		for _, ic := range vm.Config.Interfaces {
			if ic.Name == "lo" {
				kept = append(kept, ic)
				continue
			}
			removed++
		}
		if removed == 0 {
			continue
		}
		vm.Config.Interfaces = kept
		downed++
		l.logf("INCIDENT #%d: machine %s down (%d interfaces removed)", l.incidentSeq, name, removed)
	}
	if downed == 0 {
		l.incidentSeq-- // nothing was injected; give the id back
		return fmt.Errorf("emul: all of %v were already down", sorted)
	}
	l.logf("INCIDENT #%d: host failure downed %d machines", l.incidentSeq, downed)
	return l.converge()
}

// RebootVMs re-installs the full boot-time configuration of a batch of
// machines under one lock and ONE re-convergence — the re-placement
// primitive: VMs moved off a drained or failed substrate host boot their
// original device configs on the new host. Machines whose interfaces are
// already intact re-install as a no-op (a live migration re-boots the
// same config). Names are processed in sorted order.
func (l *Lab) RebootVMs(names []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.incidentPrecheck(); err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("emul: empty node batch")
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, name := range sorted {
		if _, err := l.liveVM(name); err != nil {
			return err
		}
	}
	l.incidentSeq++
	for _, name := range sorted {
		vm := l.vms[name]
		base := l.baseline[name]
		restored := len(base.Interfaces) - len(vm.Config.Interfaces)
		vm.Config.Interfaces = append([]routing.InterfaceConfig(nil), base.Interfaces...)
		l.logf("INCIDENT #%d: machine %s re-booted (%d interfaces re-installed)", l.incidentSeq, name, restored)
	}
	l.logf("INCIDENT #%d: re-placement re-booted %d machines", l.incidentSeq, len(sorted))
	return l.converge()
}

// Partition isolates a group of machines from the rest of the lab: every
// interface an inside machine has on a subnet shared with an outside
// machine is removed (the outside ends stay up), and the lab re-converges.
// The inverse is RestoreNode on each inside machine.
func (l *Lab) Partition(inside []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.incidentPrecheck(); err != nil {
		return err
	}
	if len(inside) == 0 {
		return fmt.Errorf("emul: empty partition group")
	}
	in := map[string]bool{}
	for _, name := range inside {
		if _, err := l.liveVM(name); err != nil {
			return err
		}
		in[name] = true
	}
	l.incidentSeq++
	cut := 0
	for _, name := range inside {
		vm := l.vms[name]
		for _, p := range boundarySubnets(l, vm, in) {
			removeSubnet(vm.Config, p)
			l.logf("INCIDENT #%d: partition cut %s (%v)", l.incidentSeq, name, p)
			cut++
		}
	}
	if cut == 0 {
		l.incidentSeq-- // nothing was injected; give the id back
		return fmt.Errorf("emul: partition group %v has no links to the outside", inside)
	}
	l.logf("INCIDENT #%d: partition isolated %v (%d boundary subnets cut)", l.incidentSeq, inside, cut)
	return l.converge()
}

// boundarySubnets lists vm's subnets shared with any machine outside the
// group, sorted.
func boundarySubnets(l *Lab, vm *VM, in map[string]bool) []netip.Prefix {
	seen := map[netip.Prefix]bool{}
	var out []netip.Prefix
	for _, other := range l.order {
		if in[other] || l.vms[other].Config == nil {
			continue
		}
		for _, p := range sharedSubnets(vm.Config, l.vms[other].Config) {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

// sharedSubnets returns every data-plane subnet both devices attach to,
// sorted ascending.
func sharedSubnets(a, b *routing.DeviceConfig) []netip.Prefix {
	var out []netip.Prefix
	for _, ia := range a.Interfaces {
		if ia.Name == "lo" {
			continue
		}
		for _, ib := range b.Interfaces {
			if ib.Name != "lo" && ia.Prefix == ib.Prefix {
				out = append(out, ia.Prefix)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

func hasSubnet(dc *routing.DeviceConfig, p netip.Prefix) bool {
	for _, ic := range dc.Interfaces {
		if ic.Prefix == p && ic.Name != "lo" {
			return true
		}
	}
	return false
}

func removeSubnet(dc *routing.DeviceConfig, p netip.Prefix) {
	var kept []routing.InterfaceConfig
	for _, ic := range dc.Interfaces {
		if ic.Prefix == p && ic.Name != "lo" {
			continue
		}
		kept = append(kept, ic)
	}
	dc.Interfaces = kept
}

// restoreSubnet re-installs the baseline interfaces on subnet p into dc,
// rebuilding the interface list in baseline order so a fully restored
// machine is byte-identical to its boot-time configuration.
func restoreSubnet(dc, base *routing.DeviceConfig, p netip.Prefix) {
	present := map[string]bool{}
	for _, ic := range dc.Interfaces {
		present[ic.Name] = true
	}
	var rebuilt []routing.InterfaceConfig
	for _, ic := range base.Interfaces {
		if present[ic.Name] || (ic.Prefix == p && ic.Name != "lo") {
			rebuilt = append(rebuilt, ic)
		}
	}
	dc.Interfaces = rebuilt
}

// cloneDeviceConfig deep-copies a device config (struct plus every slice
// incidents may mutate), for the boot-time baseline snapshot.
func cloneDeviceConfig(dc *routing.DeviceConfig) *routing.DeviceConfig {
	cp := *dc
	cp.Interfaces = append([]routing.InterfaceConfig(nil), dc.Interfaces...)
	if dc.OSPF != nil {
		o := *dc.OSPF
		o.Networks = append([]routing.OSPFNetwork(nil), dc.OSPF.Networks...)
		cp.OSPF = &o
	}
	if dc.BGP != nil {
		b := *dc.BGP
		b.Networks = append([]netip.Prefix(nil), dc.BGP.Networks...)
		b.Neighbors = append([]routing.BGPNeighbor(nil), dc.BGP.Neighbors...)
		cp.BGP = &b
	}
	if dc.ISIS != nil {
		i := *dc.ISIS
		i.Interfaces = append([]string(nil), dc.ISIS.Interfaces...)
		cp.ISIS = &i
	}
	return &cp
}
