package emul

import (
	"fmt"
	"net/netip"

	"autonetkit/internal/routing"
)

// Incident injection (paper §8: "creating tools to emulate workflow, or
// incidents"). Failing a link or a machine removes the affected interfaces
// from the booted configurations and re-converges the control plane, so
// subsequent measurements observe the post-incident network — the
// what-if experiments the paper motivates.

// FailLink brings down the link between two machines: both interfaces on
// their shared subnet are removed and the lab re-converges. When the
// machines share several subnets, the first (lowest) one fails.
func (l *Lab) FailLink(a, b string) error {
	if !l.started {
		return fmt.Errorf("emul: lab not started")
	}
	if l.Platform == "cbgp" {
		return fmt.Errorf("emul: incident injection is not supported on the C-BGP route solver")
	}
	va, ok := l.vms[a]
	if !ok {
		return fmt.Errorf("emul: no machine %q", a)
	}
	vb, ok := l.vms[b]
	if !ok {
		return fmt.Errorf("emul: no machine %q", b)
	}
	shared, ok := sharedSubnet(va.Config, vb.Config)
	if !ok {
		return fmt.Errorf("emul: %s and %s share no subnet", a, b)
	}
	removeSubnet(va.Config, shared)
	removeSubnet(vb.Config, shared)
	l.logf("INCIDENT: link %s -- %s (%v) failed", a, b, shared)
	return l.converge()
}

// FailNode takes a machine down entirely: all its data-plane interfaces
// are removed (the loopback stays, unreachable), and the lab re-converges.
func (l *Lab) FailNode(name string) error {
	if !l.started {
		return fmt.Errorf("emul: lab not started")
	}
	if l.Platform == "cbgp" {
		return fmt.Errorf("emul: incident injection is not supported on the C-BGP route solver")
	}
	vm, ok := l.vms[name]
	if !ok {
		return fmt.Errorf("emul: no machine %q", name)
	}
	var kept []routing.InterfaceConfig
	removed := 0
	for _, ic := range vm.Config.Interfaces {
		if ic.Name == "lo" {
			kept = append(kept, ic)
			continue
		}
		removed++
	}
	if removed == 0 {
		return fmt.Errorf("emul: %s has no data-plane interfaces to fail", name)
	}
	vm.Config.Interfaces = kept
	l.logf("INCIDENT: machine %s down (%d interfaces removed)", name, removed)
	return l.converge()
}

// sharedSubnet returns the lowest subnet both devices attach to.
func sharedSubnet(a, b *routing.DeviceConfig) (netip.Prefix, bool) {
	var best netip.Prefix
	found := false
	for _, ia := range a.Interfaces {
		if ia.Prefix.Bits() >= 31 && ia.Name == "lo" {
			continue
		}
		for _, ib := range b.Interfaces {
			if ia.Prefix == ib.Prefix && ia.Name != "lo" && ib.Name != "lo" {
				if !found || ia.Prefix.Addr().Less(best.Addr()) {
					best = ia.Prefix
					found = true
				}
			}
		}
	}
	return best, found
}

func removeSubnet(dc *routing.DeviceConfig, p netip.Prefix) {
	var kept []routing.InterfaceConfig
	for _, ic := range dc.Interfaces {
		if ic.Prefix == p && ic.Name != "lo" {
			continue
		}
		kept = append(kept, ic)
	}
	dc.Interfaces = kept
}
