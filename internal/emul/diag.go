package emul

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a Diagnostic. Errors make a device's configuration
// unusable (the device is quarantined in lenient boots, the boot fails in
// strict ones); warnings are reported but do not stop a boot.
type Severity int

// Diagnostic severities.
const (
	SevWarning Severity = iota
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is one located problem found while ingesting a rendered
// configuration (or a chaos scenario script). Every parser in the
// ingestion layer reports problems as Diagnostics instead of bailing on
// the first bad byte: a parse pass continues past a broken stanza and
// accumulates everything wrong with a file, so one boot reports every
// problem at once.
type Diagnostic struct {
	Severity Severity
	Device   string // device the problem belongs to ("" = whole lab/script)
	File     string // file within the device tree ("" = whole device)
	Line     int    // 1-based line number (0 = whole file)
	Message  string
}

// String renders the diagnostic in the canonical report form
// `device:file:line: severity: message`, omitting empty location parts.
func (d Diagnostic) String() string {
	var sb strings.Builder
	if d.Device != "" {
		sb.WriteString(d.Device)
		sb.WriteString(":")
	}
	if d.File != "" {
		sb.WriteString(d.File)
		sb.WriteString(":")
	}
	if d.Line > 0 {
		fmt.Fprintf(&sb, "%d:", d.Line)
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	sb.WriteString(d.Severity.String())
	sb.WriteString(": ")
	sb.WriteString(d.Message)
	return sb.String()
}

// Diagnostics is an accumulated diagnostic list.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic is error-level.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors returns only the error-level diagnostics.
func (ds Diagnostics) Errors() Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// ForDevice returns the diagnostics attributed to one device.
func (ds Diagnostics) ForDevice(name string) Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Device == name {
			out = append(out, d)
		}
	}
	return out
}

// Sorted returns a copy ordered by (device, file, line, message) — the
// stable order quarantine reports are printed in.
func (ds Diagnostics) Sorted() Diagnostics {
	out := make(Diagnostics, len(ds))
	copy(out, ds)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// String renders the sorted diagnostics one per line.
func (ds Diagnostics) String() string {
	sorted := ds.Sorted()
	lines := make([]string, len(sorted))
	for i, d := range sorted {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}

// Err returns nil when the list carries no error-level diagnostics, and a
// *DiagnosticError wrapping the whole list otherwise.
func (ds Diagnostics) Err() error {
	if !ds.HasErrors() {
		return nil
	}
	return &DiagnosticError{Diags: ds}
}

// DiagnosticError is the error form of a diagnostic list: a strict boot
// that hits config errors fails with one of these, carrying every problem
// found in the pass (not just the first).
type DiagnosticError struct {
	Diags Diagnostics
}

// Error summarises the error-level diagnostics, one per line.
func (e *DiagnosticError) Error() string {
	errs := e.Diags.Errors()
	return fmt.Sprintf("emul: %d config error(s):\n%s", len(errs), errs.String())
}

// diagSink accumulates diagnostics for one (device, file) parse pass. The
// zero Device/File are allowed for lab-wide problems.
type diagSink struct {
	device string
	file   string
	diags  Diagnostics
}

func (s *diagSink) errorf(line int, format string, args ...any) {
	s.diags = append(s.diags, Diagnostic{
		Severity: SevError, Device: s.device, File: s.file, Line: line,
		Message: fmt.Sprintf(format, args...),
	})
}

func (s *diagSink) warnf(line int, format string, args ...any) {
	s.diags = append(s.diags, Diagnostic{
		Severity: SevWarning, Device: s.device, File: s.file, Line: line,
		Message: fmt.Sprintf(format, args...),
	})
}
