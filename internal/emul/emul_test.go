package emul

import (
	"net/netip"
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/render"
)

// buildLab runs the full pipeline (fig5 input -> overlays -> alloc ->
// compile -> render) and loads the resulting lab.
func buildLab(t *testing.T, platform, syntax string) (*Lab, *ipalloc.Result) {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		in.AddNode(n.id, graph.Attrs{
			core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter,
			core.AttrPlatform: platform, core.AttrSyntax: syntax,
		})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		in.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := Load(fs, "localhost", platform)
	if err != nil {
		t.Fatal(err)
	}
	return lab, alloc
}

func startedLab(t *testing.T, platform, syntax string) (*Lab, *ipalloc.Result) {
	t.Helper()
	lab, alloc := buildLab(t, platform, syntax)
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	return lab, alloc
}

func TestNetkitLabLoads(t *testing.T) {
	lab, _ := buildLab(t, "netkit", "quagga")
	if len(lab.VMNames()) != 5 {
		t.Fatalf("machines = %v", lab.VMNames())
	}
	vm, ok := lab.VM("r1")
	if !ok {
		t.Fatal("r1 missing")
	}
	if _, ok := vm.Files["etc/quagga/ospfd.conf"]; !ok {
		t.Error("machine files not attached")
	}
	if _, ok := vm.Files["r1.startup"]; !ok {
		t.Error("startup script not attached")
	}
	if !vm.TapIP.IsValid() {
		t.Error("tap ip not parsed from lab.conf")
	}
}

func TestNetkitBootRecoversConfig(t *testing.T) {
	lab, alloc := startedLab(t, "netkit", "quagga")
	vm, _ := lab.VM("r3")
	dc := vm.Config
	if dc == nil || !vm.Booted {
		t.Fatal("vm not booted")
	}
	// r3 has 3 data interfaces + lo.
	if len(dc.Interfaces) != 4 {
		t.Errorf("interfaces = %d, want 4", len(dc.Interfaces))
	}
	wantLB := alloc.Overlay.Node("r3").Get(ipalloc.AttrLoopback).(netip.Addr)
	if dc.Loopback != wantLB {
		t.Errorf("loopback = %v, want %v", dc.Loopback, wantLB)
	}
	if dc.OSPF == nil || dc.BGP == nil {
		t.Fatal("protocol configs missing")
	}
	if dc.BGP.ASN != 1 {
		t.Errorf("asn = %d", dc.BGP.ASN)
	}
	// 3 iBGP + 1 eBGP neighbors.
	if len(dc.BGP.Neighbors) != 4 {
		t.Errorf("neighbors = %d, want 4", len(dc.BGP.Neighbors))
	}
}

func TestNetkitOSPFAdjacencies(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	// r1 has two intra-AS links.
	nbrs := lab.OSPFNeighbors("r1")
	if len(nbrs) != 2 {
		t.Fatalf("r1 ospf neighbors = %+v", nbrs)
	}
	names := []string{nbrs[0].Hostname, nbrs[1].Hostname}
	if names[0] != "r2" || names[1] != "r3" {
		t.Errorf("neighbors = %v", names)
	}
	// No adjacency across the AS boundary.
	for _, nbr := range lab.OSPFNeighbors("r3") {
		if nbr.Hostname == "r5" {
			t.Error("OSPF adjacency crossed AS boundary")
		}
	}
}

func TestNetkitBGPConverges(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	res := lab.BGPResult()
	if !res.Converged || res.Oscillating {
		t.Fatalf("bgp result = %+v", res)
	}
	// r5 (AS2) must learn AS1's infrastructure block.
	routes := lab.BGPRoutes("r5")
	found := false
	for _, rt := range routes {
		if len(rt.ASPath) == 1 && rt.ASPath[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("r5 learned no AS1 routes: %+v", routes)
	}
}

// The headline integration test: a traceroute across the AS boundary over
// the emulated data plane, from generated configs alone.
func TestNetkitCrossASTraceroute(t *testing.T) {
	lab, alloc := startedLab(t, "netkit", "quagga")
	// Destination: r5's first interface address (paper §6.1 uses
	// interfaces[0]).
	var dst netip.Addr
	for _, e := range alloc.Table.Entries() {
		if e.Node == "r5" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	if !dst.IsValid() {
		t.Fatal("no interface address for r5")
	}
	out, err := lab.Exec("r1", "traceroute -naU "+dst.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, dst.String()) {
		t.Errorf("traceroute did not reach %v:\n%s", dst, out)
	}
	if strings.Contains(out, "* * *") {
		t.Errorf("traceroute incomplete:\n%s", out)
	}
	// Every reported hop address maps back to a known device (§6.1's
	// reverse mapping).
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if a, err := netip.ParseAddr(fields[1]); err == nil {
				if alloc.Table.HostForIP(a) == "" {
					t.Errorf("hop %v not in allocation table", a)
				}
			}
		}
	}
}

func TestNetkitPingLoopbacks(t *testing.T) {
	lab, alloc := startedLab(t, "netkit", "quagga")
	// Intra-AS loopback reachability (OSPF-advertised /32s).
	lb4 := alloc.Overlay.Node("r4").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("r1", "ping -c 1 "+lb4.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, " 1 received") {
		t.Errorf("intra-AS loopback unreachable:\n%s", out)
	}
	// Cross-AS loopback (advertised via BGP /32).
	lb5 := alloc.Overlay.Node("r5").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err = lab.Exec("r1", "ping -c 1 "+lb5.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, " 1 received") {
		t.Errorf("cross-AS loopback unreachable:\n%s", out)
	}
}

func TestShowCommands(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	ospf, err := lab.Exec("r1", "show ip ospf neighbor")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ospf, "Full/DR") || !strings.Contains(ospf, "eth0") {
		t.Errorf("ospf neighbor output:\n%s", ospf)
	}
	bgp, err := lab.Exec("r5", "show ip bgp")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bgp, "*>") {
		t.Errorf("bgp output:\n%s", bgp)
	}
	routes, err := lab.Exec("r1", "show ip route")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(routes, "C>*") || !strings.Contains(routes, "O>*") {
		t.Errorf("route output:\n%s", routes)
	}
}

func TestExecErrors(t *testing.T) {
	lab, _ := buildLab(t, "netkit", "quagga")
	if _, err := lab.Exec("r1", "traceroute 1.2.3.4"); err == nil {
		t.Error("exec before start accepted")
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := lab.Start(0); err == nil {
		t.Error("double start accepted")
	}
	if _, err := lab.Exec("ghost", "ping 1.2.3.4"); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := lab.Exec("r1", "rm -rf /"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := lab.Exec("r1", "show ip mystery"); err == nil {
		t.Error("unknown show accepted")
	}
	if _, err := lab.Exec("r1", "traceroute -naU not-an-ip"); err == nil {
		t.Error("bad traceroute destination accepted")
	}
	if _, err := lab.Exec("r1", ""); err == nil {
		t.Error("empty command accepted")
	}
}

func TestEventsLogged(t *testing.T) {
	lab, _ := startedLab(t, "netkit", "quagga")
	events := strings.Join(lab.Events(), "\n")
	for _, want := range []string{"starting lab", "booted", "igp converged", "bgp converged", "data plane ready"} {
		if !strings.Contains(events, want) {
			t.Errorf("event log missing %q:\n%s", want, events)
		}
	}
}

// The same network on the Dynagen/IOS platform: configs in IOS syntax boot
// and converge identically (§7.2's cross-platform claim).
func TestDynagenIOSLab(t *testing.T) {
	lab, alloc := startedLab(t, "dynagen", "ios")
	if got := len(lab.VMNames()); got != 5 {
		t.Fatalf("machines = %d", got)
	}
	vm, _ := lab.VM("r1")
	if vm.Config == nil || vm.Config.OSPF == nil || vm.Config.BGP == nil {
		t.Fatal("IOS parse incomplete")
	}
	if vm.Config.Interfaces[0].Name != "f0/0" {
		t.Errorf("iface = %s", vm.Config.Interfaces[0].Name)
	}
	if !lab.BGPResult().Converged {
		t.Fatalf("bgp = %+v", lab.BGPResult())
	}
	lb5 := alloc.Overlay.Node("r5").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("r1", "ping -c 1 "+lb5.String())
	if err != nil || !strings.Contains(out, " 1 received") {
		t.Errorf("cross-AS ping on IOS lab failed: %v\n%s", err, out)
	}
}

// The same network on Junosphere/JunOS.
func TestJunosphereLab(t *testing.T) {
	lab, _ := startedLab(t, "junosphere", "junos")
	vm, _ := lab.VM("r1")
	if vm.Config == nil || vm.Config.OSPF == nil || vm.Config.BGP == nil {
		t.Fatal("JunOS parse incomplete")
	}
	if vm.Config.Interfaces[0].Name != "em0" {
		t.Errorf("iface = %s", vm.Config.Interfaces[0].Name)
	}
	if !lab.BGPResult().Converged {
		t.Fatalf("bgp = %+v", lab.BGPResult())
	}
	if len(lab.OSPFNeighbors("r1")) != 2 {
		t.Errorf("junos ospf neighbors = %+v", lab.OSPFNeighbors("r1"))
	}
}

// The same network as a C-BGP route-solver script.
func TestCBGPLab(t *testing.T) {
	lab, _ := startedLab(t, "cbgp", "cbgp")
	if got := len(lab.VMNames()); got != 5 {
		t.Fatalf("cbgp nodes = %d", got)
	}
	if !lab.BGPResult().Converged {
		t.Fatalf("bgp = %+v", lab.BGPResult())
	}
	// The AS2 node learned AS1 routes.
	var as2 string
	for _, name := range lab.VMNames() {
		vm, _ := lab.VM(name)
		if vm.Config.BGP != nil && vm.Config.BGP.ASN == 2 {
			as2 = name
		}
	}
	if as2 == "" {
		t.Fatal("no AS2 node")
	}
	found := false
	for _, rt := range lab.BGPRoutes(as2) {
		if len(rt.ASPath) == 1 && rt.ASPath[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("cbgp AS2 routes: %+v", lab.BGPRoutes(as2))
	}
	// No data plane on a route solver.
	if _, err := lab.Exec(as2, "traceroute -naU 10.0.0.1"); err == nil {
		t.Error("traceroute on cbgp accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	fs := render.NewFileSet()
	if _, err := Load(fs, "localhost", "netkit"); err == nil {
		t.Error("empty fileset accepted")
	}
	fs.Write("localhost/netkit/readme.txt", "not a lab")
	if _, err := Load(fs, "localhost", "netkit"); err == nil {
		t.Error("missing lab.conf accepted")
	}
	fs2 := render.NewFileSet()
	fs2.Write("localhost/exotic/x", "y")
	if _, err := Load(fs2, "localhost", "exotic"); err == nil {
		t.Error("unknown platform accepted")
	}
}

// A deliberately broken configuration must surface as network misbehaviour:
// corrupt r3's bgpd remote-as and the r3-r5 session stays down.
func TestBrokenConfigSurfaces(t *testing.T) {
	anm := core.NewANM()
	in, _ := anm.AddOverlay(core.OverlayInput)
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	in.AddEdge("r1", "r2", graph.Attrs{"type": "physical"})
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, _ := ipalloc.NewDefault().Allocate(anm)
	db, _ := compile.Compile(anm, alloc, compile.Options{})
	fs, _ := render.Render(db)
	// Sabotage: flip r1's remote-as.
	conf, _ := fs.Read("localhost/netkit/r1/etc/quagga/bgpd.conf")
	fs.Write("localhost/netkit/r1/etc/quagga/bgpd.conf",
		strings.ReplaceAll(conf, "remote-as 2", "remote-as 99"))
	lab, err := Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	events := strings.Join(lab.Events(), "\n")
	if !strings.Contains(events, "session down") {
		t.Errorf("broken session not reported:\n%s", events)
	}
	if routes := lab.BGPRoutes("r2"); len(routes) > 1 {
		t.Errorf("r2 learned routes over a broken session: %+v", routes)
	}
}

func TestMaskBits(t *testing.T) {
	cases := []struct {
		mask string
		want int
	}{
		{"255.255.255.252", 30}, {"255.255.255.0", 24}, {"255.0.0.0", 8}, {"255.255.255.255", 32}, {"0.0.0.0", 0},
	}
	for _, c := range cases {
		got, err := maskBits(c.mask)
		if err != nil || got != c.want {
			t.Errorf("maskBits(%s) = %d, %v", c.mask, got, err)
		}
	}
	if _, err := maskBits("255.0.255.0"); err == nil {
		t.Error("non-contiguous mask accepted")
	}
	if _, err := maskBits("garbage"); err == nil {
		t.Error("garbage mask accepted")
	}
}

func TestWildcardBits(t *testing.T) {
	got, err := wildcardBits("0.0.0.3")
	if err != nil || got != 30 {
		t.Errorf("wildcardBits = %d, %v", got, err)
	}
	if _, err := wildcardBits("3.0.0.3"); err == nil {
		t.Error("non-contiguous wildcard accepted")
	}
}

// E7 (emulated): the same network with IS-IS as the IGP — built with the
// two-line design rule — boots, converges and forwards end to end.
func TestISISLabEndToEnd(t *testing.T) {
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		in.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	if err := design.BuildAll(anm, design.Options{IGP: design.IGPISIS}); err != nil {
		t.Fatal(err)
	}
	if anm.HasOverlay(design.OverlayOSPF) {
		t.Fatal("OSPF overlay built despite IS-IS IGP selection")
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No ospfd rendered; isisd present.
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Read("localhost/netkit/r1/etc/quagga/ospfd.conf"); ok {
		t.Error("ospfd.conf rendered for an IS-IS lab")
	}
	if _, ok := fs.Read("localhost/netkit/r1/etc/quagga/isisd.conf"); !ok {
		t.Fatal("isisd.conf missing")
	}
	lab, err := Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	// IS-IS adjacencies formed; no OSPF ones.
	if n := len(lab.ISISNeighbors("r1")); n != 2 {
		t.Errorf("r1 isis neighbors = %d, want 2", n)
	}
	out, err := lab.Exec("r1", "show isis neighbor")
	if err != nil || !strings.Contains(out, "r2") {
		t.Errorf("show isis neighbor: %v\n%s", err, out)
	}
	if n := len(lab.OSPFNeighbors("r1")); n != 0 {
		t.Errorf("r1 ospf neighbors = %d, want 0", n)
	}
	if !lab.BGPResult().Converged {
		t.Fatalf("bgp = %+v", lab.BGPResult())
	}
	// Intra-AS loopback reachability over IS-IS routes.
	lb4 := alloc.Overlay.Node("r4").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err = lab.Exec("r1", "ping -c 1 "+lb4.String())
	if err != nil || !strings.Contains(out, " 1 received") {
		t.Errorf("intra-AS ping over IS-IS failed: %v\n%s", err, out)
	}
	// Cross-AS reachability (BGP next hops resolved through IS-IS).
	lb5 := alloc.Overlay.Node("r5").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err = lab.Exec("r1", "ping -c 1 "+lb5.String())
	if err != nil || !strings.Contains(out, " 1 received") {
		t.Errorf("cross-AS ping over IS-IS failed: %v\n%s", err, out)
	}
}

// Servers get a static default route to an adjacent router and can reach
// the rest of the network without running any routing protocol.
func TestServerDefaultGateway(t *testing.T) {
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
		dt  string
	}{{"r1", 1, core.DeviceRouter}, {"r2", 1, core.DeviceRouter}, {"srv", 1, core.DeviceServer}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: n.dt})
	}
	in.AddEdge("r1", "r2", graph.Attrs{"type": "physical"})
	in.AddEdge("srv", "r1", graph.Attrs{"type": "physical"})
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The compiler recorded a gateway pointing at r1.
	gw, ok := db.Device("srv").Get("gateway")
	if !ok {
		t.Fatal("server has no gateway")
	}
	if alloc.Table.HostForIP(gw.(netip.Addr)) != "r1" {
		t.Errorf("gateway %v is not r1's address", gw)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	startup, _ := fs.Read("localhost/netkit/srv.startup")
	if !strings.Contains(startup, "/sbin/route add default gw ") {
		t.Errorf("startup missing default route:\n%s", startup)
	}
	lab, err := Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	vm, _ := lab.VM("srv")
	if !vm.Config.Gateway.IsValid() {
		t.Fatal("gateway not parsed at boot")
	}
	// srv pings r2's loopback across the gateway.
	lb2 := alloc.Overlay.Node("r2").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("srv", "ping -c 1 "+lb2.String())
	if err != nil || !strings.Contains(out, " 1 received") {
		t.Errorf("server ping via gateway failed: %v\n%s", err, out)
	}
	// Routers do NOT get a gateway.
	if _, ok := db.Device("r1").Get("gateway"); ok {
		t.Error("router received a gateway")
	}
}
