package emul

import "testing"

// Fuzz targets: the config parsers must never panic on arbitrary rendered
// (or hand-edited, or corrupted-in-transfer) input — they produce a device
// config, a diagnostic list, or both. Seeds cover the grammar corners and
// the recovery paths; committed corpora live under testdata/fuzz/.

func FuzzParseQuagga(f *testing.F) {
	f.Add("/sbin/ifconfig eth0 10.0.0.1 netmask 255.255.255.252 up\n",
		"router ospf\n  network 10.0.0.0/30 area 0\n",
		"router bgp 1\n  neighbor 10.0.0.2 remote-as 2\n",
		"router isis ank\n  net 49.0001.0000.0000.0001.00\n")
	f.Add("", "", "", "")
	f.Add("/sbin/ifconfig eth0 junk netmask junk up\n", "interface eth0\n  ip ospf cost x\n",
		"router bgp abc\n  neighbor bad remote-as x\n  route-map m permit q\n", "router isis\n")
	f.Add("/sbin/ifconfig\n/sbin/route add default gw\n", "router ospf\n network 1/99 area -\n",
		"router bgp 1\nroute-map m permit 10\n set local-preference\n", "net 49\n")
	f.Fuzz(func(t *testing.T, startup, ospfd, bgpd, isisd string) {
		files := map[string]string{
			"x.startup":             startup,
			"etc/quagga/daemons":    "zebra=yes\nospfd=yes\nbgpd=yes\nisisd=yes\n",
			"etc/quagga/ospfd.conf": ospfd,
			"etc/quagga/bgpd.conf":  bgpd,
			"etc/quagga/isisd.conf": isisd,
		}
		dc, diags := parseQuaggaVM("x", files)
		if dc == nil && !diags.HasErrors() {
			t.Fatal("nil config without error diagnostics")
		}
	})
}

func FuzzParseIOS(f *testing.F) {
	seeds := []string{
		"",
		"hostname r1\ninterface f0/0\n ip address 10.0.0.1 255.255.255.252\nrouter ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n",
		"router bgp 1\n neighbor 10.0.0.2 remote-as 2\n neighbor 10.0.0.2 route-map m out\nroute-map m permit 10\n set metric 5\n",
		"router bgp\ninterface\n ip address junk junk\n ip ospf cost x\n",
		"router ospf 1\n network 10.0.0.0 3.0.0.3 area 0\n network 10.0.0.0 0.0.0.3 area z\n",
		"interface lo0\n ip address 192.168.0.1 255.255.255.255\nrouter bgp 65536\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, conf string) {
		dc, diags := parseIOSConfig("x", conf)
		if dc == nil && !diags.HasErrors() {
			t.Fatal("nil config without error diagnostics")
		}
	})
}

func FuzzParseJunos(f *testing.F) {
	seeds := []string{
		"",
		"system {\n host-name r1;\n}\ninterfaces {\n em0 {\n unit 0 {\n family inet {\n address 10.0.0.1/30;\n}\n}\n}\n}\n",
		"routing-options {\n autonomous-system 1;\n}\nprotocols {\n bgp {\n group e {\n peer-as 2;\n neighbor 10.0.0.2;\n neighbor 10.0.0.2;\n}\n}\n}\n",
		"}\n}\nprotocols {\n ospf {\n area x {\n}\n}\n",
		"a {\nb {\nc {\nunterminated\n",
		"protocols {\n bgp {\n group g {\n peer-as x;\n neighbor junk;\n}\n}\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, conf string) {
		dc, diags := parseJunosConfig("x", conf)
		if dc == nil && !diags.HasErrors() {
			t.Fatal("nil config without error diagnostics")
		}
	})
}

func FuzzParseCBGP(f *testing.F) {
	seeds := []string{
		"",
		"net add node 10.0.0.1\nnet add node 10.0.0.2\nnet add link 10.0.0.1 10.0.0.2 5\nbgp add router 1 10.0.0.1\nbgp router 10.0.0.1\n  add peer 2 10.0.0.2\n  peer 10.0.0.2 up\nexit\nsim run\n",
		"net add node junk\nnet add link a b c\nbgp add router x y\nbgp router z\n",
		"net add node 10.0.0.1\nbgp add router 1 10.0.0.1\nbgp router 10.0.0.1\n  add peer 2 10.0.0.2\n  peer 10.0.0.2 filter in add-rule action \"local-pref 200\"\n  add network 10.0.0.0/24\nexit\n",
		"bgp router 10.0.0.1\n  add peer 2 10.0.0.2\n  peer 10.0.0.2 filter in add-rule action \"local-pref x\"\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script string) {
		lab, diags := parseCBGPScript(script)
		if lab == nil {
			t.Fatalf("nil lab (diags: %v)", diags)
		}
	})
}
