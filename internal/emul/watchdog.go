package emul

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"autonetkit/internal/obs"
	"autonetkit/internal/routing"
)

// The convergence watchdog: after boot and after every chaos incident the
// lab's control plane is re-run under a ConvergenceBudget, and the outcome
// is classified rather than trusted — an emulated experiment is only
// meaningful when the substrate can tell "the network converged" apart
// from "the engine stopped". On a bad verdict the supervisor climbs an
// escalation ladder modelled on how an operator nurses a sick BGP mesh:
//
//	observe ──▶ escalate budget ──▶ soft reset ──▶ quarantine
//	             (maybe starved)    (clear ip bgp   (remove the
//	                                 on the flappy   persistently sick
//	                                 speakers)       speaker, PR 3 style)
//
// Every rung is recorded as a structured step, counted in obs, and
// surfaced to deploy events, so the full ladder a lab climbed is visible
// in Network.Stats() and the deployment log.

// Verdict classifies one bounded convergence run.
type Verdict string

const (
	// VerdictConverged: the control plane reached a fixed point.
	VerdictConverged Verdict = "converged"
	// VerdictOscillating: a state repeated with a stable period — an RFC
	// 3345-class persistent oscillation, more rounds will not help.
	VerdictOscillating Verdict = "oscillating"
	// VerdictStarved: the round budget ran out with no detected cycle —
	// the run may merely need a larger budget.
	VerdictStarved Verdict = "starved"
	// VerdictPartitioned: the run reached a fixed point but the session
	// graph has more than one component — speakers exist that can never
	// hear each other's routes. Structural, not recoverable by the ladder.
	VerdictPartitioned Verdict = "partitioned"
	// VerdictCancelled: the budget's wall-clock timeout expired first.
	VerdictCancelled Verdict = "cancelled"
)

// Classify maps a BGP run outcome plus the session-graph component count
// onto a verdict. components <= 1 means the session graph is connected (a
// zero-speaker lab is trivially connected).
func Classify(res routing.BGPResult, components int) Verdict {
	switch {
	case res.Cancelled:
		return VerdictCancelled
	case res.Converged && components > 1:
		return VerdictPartitioned
	case res.Converged:
		return VerdictConverged
	case res.CycleLen > 0:
		return VerdictOscillating
	default:
		return VerdictStarved
	}
}

// Recoverable reports whether the escalation ladder can plausibly improve
// the verdict: oscillation and starvation are worth escalating; a
// partition is structural and a cancellation means the wall clock, not
// the protocol, gave out.
func (v Verdict) Recoverable() bool {
	return v == VerdictOscillating || v == VerdictStarved
}

// --- Lab supervision hooks -------------------------------------------------

// SetPerturber installs a control-plane perturbation layer on the lab: all
// subsequent (re)convergences thread it into the OSPF/IS-IS/BGP engines.
// nil restores the zero-perturbation fast path. The same perturber is
// shared across reconvergences; each engine run calls its Reset, so the
// scripted schedule replays identically every time.
func (l *Lab) SetPerturber(p routing.Perturber) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pert = p
}

// Perturber returns the currently installed perturbation layer (nil when
// the control plane is perfect).
func (l *Lab) Perturber() routing.Perturber {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.pert
}

// Reconverge re-runs the control plane from scratch under the current
// budget (fresh engines over the current configs) and returns the outcome.
func (l *Lab) Reconverge() (routing.BGPResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started {
		return routing.BGPResult{}, fmt.Errorf("emul: lab not started")
	}
	if err := l.converge(); err != nil {
		return routing.BGPResult{}, err
	}
	return l.bgpResult, nil
}

// ReconvergeWith installs a new budget and re-runs the control plane under
// it — the watchdog's budget-escalation rung.
func (l *Lab) ReconvergeWith(b routing.ConvergenceBudget) (routing.BGPResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started {
		return routing.BGPResult{}, fmt.Errorf("emul: lab not started")
	}
	l.budget = b
	l.logf("WATCHDOG: budget escalated to %d rounds%s", b.BGPRounds(), l.incidentNote())
	if err := l.converge(); err != nil {
		return routing.BGPResult{}, err
	}
	return l.bgpResult, nil
}

// SoftResetSpeakers performs the supervisor's `clear ip bgp` rung: the
// named speakers' RIBs are flushed, the perturbation layer is notified (so
// session-state-local faults heal), and the engine continues from the
// flushed state under the current budget. The data plane is rebuilt from
// the new selections.
func (l *Lab) SoftResetSpeakers(hosts []string) (routing.BGPResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started {
		return routing.BGPResult{}, fmt.Errorf("emul: lab not started")
	}
	if l.bgp == nil {
		return routing.BGPResult{}, fmt.Errorf("emul: lab has no BGP engine")
	}
	l.logf("WATCHDOG: soft reset of %s (RIB flush + re-exchange)%s", strings.Join(hosts, ", "), l.incidentNote())
	l.bgp.SoftReset(hosts)
	// A reset discards the engine's trajectory recording, so the lab's
	// cached replay is stale too; the next converge recomputes in full.
	l.bgpReplay = nil
	ctx, cancel := l.budget.Context()
	l.bgpResult = l.bgp.RunContext(ctx, l.budget.MaxBGPRounds)
	cancel()
	l.logBGPResult()
	if l.Platform != "cbgp" {
		if err := l.buildDataplane(l.liveDevices(), nil); err != nil {
			return l.bgpResult, err
		}
	}
	return l.bgpResult, nil
}

// QuarantineSpeakers is the ladder's last rung: the named machines are
// removed from the running topology (PR 3 quarantine semantics — nil
// Config, listed in Quarantined) and the survivors re-converge from
// scratch. Quarantining every remaining machine is refused.
func (l *Lab) QuarantineSpeakers(hosts []string, reason string) (routing.BGPResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started {
		return routing.BGPResult{}, fmt.Errorf("emul: lab not started")
	}
	live := 0
	for _, name := range l.order {
		if l.vms[name].Config != nil {
			live++
		}
	}
	if len(hosts) >= live {
		return l.bgpResult, fmt.Errorf("emul: refusing to quarantine all %d remaining machines", live)
	}
	for _, name := range hosts {
		vm, ok := l.vms[name]
		if !ok {
			return l.bgpResult, fmt.Errorf("emul: no machine %q", name)
		}
		if vm.Config == nil {
			return l.bgpResult, fmt.Errorf("emul: machine %q already quarantined", name)
		}
		vm.Config = nil
		vm.Booted = false
		l.quarantined = append(l.quarantined, name)
		l.logf("machine %s QUARANTINED by watchdog (%s)%s", name, reason, l.incidentNote())
	}
	sort.Strings(l.quarantined)
	if err := l.converge(); err != nil {
		return routing.BGPResult{}, err
	}
	return l.bgpResult, nil
}

// FlappingSessions exposes the engine's session up↔down transition log:
// the unordered speaker pairs whose session flapped at least min times
// during the most recent run, sorted.
func (l *Lab) FlappingSessions(min int) [][2]string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.bgp == nil {
		return nil
	}
	return l.bgp.FlappingSessions(min)
}

// UnstableSpeakers lists the speakers whose best-route selection changed
// within the last window rounds of the most recent run, sorted.
func (l *Lab) UnstableSpeakers(window int) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.bgp == nil {
		return nil
	}
	return l.bgp.UnstableSpeakers(window)
}

// RouteChurn returns the per-prefix best-route change counts accumulated
// by the most recent convergence — the route-churn metric experiments
// report alongside rounds-to-quiescence.
func (l *Lab) RouteChurn() map[netip.Prefix]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.bgp == nil {
		return nil
	}
	return l.bgp.RouteChurn()
}

// TotalChurn sums RouteChurn over all prefixes.
func (l *Lab) TotalChurn() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.bgp == nil {
		return 0
	}
	return l.bgp.TotalChurn()
}

// SessionComponents counts connected components of the established BGP
// session graph (1 = connected; more = control-plane partition).
func (l *Lab) SessionComponents() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.bgp == nil {
		return 0
	}
	return l.bgp.SessionComponents()
}

// LiveVMNames lists the machines currently part of the running topology
// (excluding quarantined ones), in lab order.
func (l *Lab) LiveVMNames() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []string
	for _, name := range l.order {
		if l.vms[name].Config != nil {
			out = append(out, name)
		}
	}
	return out
}

// Verdict classifies the lab's most recent convergence outcome.
func (l *Lab) Verdict() Verdict {
	l.mu.RLock()
	defer l.mu.RUnlock()
	comp := 0
	if l.bgp != nil {
		comp = l.bgp.SessionComponents()
	}
	return Classify(l.bgpResult, comp)
}

// --- The watchdog ----------------------------------------------------------

// Watchdog supervises a lab's convergence and self-heals on failure. The
// zero value is usable: it reads the budget from the lab and applies the
// default escalation factor and flap threshold.
type Watchdog struct {
	// Budget is the base convergence budget; the zero value adopts the
	// lab's current budget.
	Budget routing.ConvergenceBudget
	// EscalateFactor multiplies the round budget on the first rung
	// (default 4, minimum 2).
	EscalateFactor int
	// FlapThreshold is the minimum session up↔down transition count that
	// marks a session as flapping (default 3).
	FlapThreshold int
	// Obs, when non-nil, receives the watchdog_* counters.
	Obs *obs.Collector
	// OnEvent, when non-nil, receives one call per ladder rung — the
	// deploy layer bridges these into its event stream.
	OnEvent func(action, detail string)
}

// EscalationStep is one rung of the ladder, as climbed.
type EscalationStep struct {
	// Action is "observe", "escalate-budget", "soft-reset" or "quarantine".
	Action string
	// Targets are the speakers the rung acted on (nil for the first two).
	Targets []string
	// Verdict classifies the convergence outcome after the rung.
	Verdict Verdict
	// Rounds is the engine's cumulative round counter after the rung.
	Rounds int
	// Detail is the budget's one-line description of the outcome.
	Detail string
	// Incident is the id of the most recently injected incident when this
	// rung ran (Lab.LastIncidentID), 0 when no incident preceded it — the
	// escalation's trigger, for incident-to-recovery attribution in reports.
	Incident int
}

// String renders the step as one stable line for reports and goldens.
func (s EscalationStep) String() string {
	tag := ""
	if s.Incident > 0 {
		tag = fmt.Sprintf(" [incident #%d]", s.Incident)
	}
	if len(s.Targets) == 0 {
		return fmt.Sprintf("%s%s: %s (%s)", s.Action, tag, s.Verdict, s.Detail)
	}
	return fmt.Sprintf("%s%s [%s]: %s (%s)", s.Action, tag, strings.Join(s.Targets, ", "), s.Verdict, s.Detail)
}

// SupervisionReport is the full ladder one Supervise call climbed.
type SupervisionReport struct {
	Steps []EscalationStep
	// Final is the verdict after the last rung.
	Final Verdict
	// Recovered reports that a non-converged lab reached VerdictConverged
	// through at least one escalation.
	Recovered bool
	// Quarantined lists the devices the ladder removed, sorted.
	Quarantined []string
}

// Escalations counts the rungs climbed beyond the initial observation.
func (r SupervisionReport) Escalations() int {
	if len(r.Steps) == 0 {
		return 0
	}
	return len(r.Steps) - 1
}

// Describe renders the report as one line per rung.
func (r SupervisionReport) Describe() string {
	var sb strings.Builder
	for _, s := range r.Steps {
		fmt.Fprintf(&sb, "watchdog %s\n", s)
	}
	return sb.String()
}

// Supervise classifies the lab's current convergence outcome and, when the
// verdict is recoverable (oscillating or starved), climbs the escalation
// ladder until the lab converges or the rungs run out. The lab's budget is
// restored to the base budget on return; the engines keep whatever state
// the last rung produced.
func (w *Watchdog) Supervise(lab *Lab) (SupervisionReport, error) {
	w.Obs.Add(obs.CounterWatchdogRuns, 1)
	base := w.Budget
	if base == (routing.ConvergenceBudget{}) {
		base = lab.Budget()
	}
	defer lab.SetBudget(base)

	rep := SupervisionReport{}
	cur := base
	observe := func(action string, targets []string, res routing.BGPResult) Verdict {
		v := Classify(res, lab.SessionComponents())
		step := EscalationStep{Action: action, Targets: targets, Verdict: v,
			Rounds: res.Rounds, Detail: cur.Describe(res), Incident: lab.LastIncidentID()}
		rep.Steps = append(rep.Steps, step)
		rep.Final = v
		if w.OnEvent != nil {
			w.OnEvent(action, step.String())
		}
		return v
	}

	v := observe("observe", nil, lab.BGPResult())
	if !v.Recoverable() {
		return rep, nil
	}

	// Rung 1: maybe the run was merely starved — re-run with a larger
	// round budget. (Also re-runs oscillators: the larger budget costs
	// little and double-checks the cycle verdict from scratch.)
	cur = base.Escalated(w.factor())
	w.Obs.Add(obs.CounterWatchdogBudgetEscalations, 1)
	res, err := lab.ReconvergeWith(cur)
	if err != nil {
		return rep, err
	}
	if v = observe("escalate-budget", nil, res); !v.Recoverable() {
		w.noteRecovery(&rep, v)
		return rep, nil
	}

	// Rung 2: soft-reset the speakers implicated by the engine's own
	// adjacency-change log (fall back to selection-unstable speakers, then
	// to everyone — a full `clear ip bgp *`).
	targets := w.resetTargets(lab, res)
	w.Obs.Add(obs.CounterWatchdogSoftResets, 1)
	res, err = lab.SoftResetSpeakers(targets)
	if err != nil {
		return rep, err
	}
	if v = observe("soft-reset", targets, res); !v.Recoverable() {
		w.noteRecovery(&rep, v)
		return rep, nil
	}

	// Rung 3: quarantine the persistently sick speakers — a greedy cover
	// of the flapping sessions — and re-converge the survivors.
	victims := w.quarantineVictims(lab, res)
	if len(victims) == 0 {
		return rep, nil
	}
	w.Obs.Add(obs.CounterWatchdogQuarantines, int64(len(victims)))
	res, err = lab.QuarantineSpeakers(victims, "persistent oscillation")
	if err != nil {
		return rep, err
	}
	rep.Quarantined = append(rep.Quarantined, victims...)
	sort.Strings(rep.Quarantined)
	v = observe("quarantine", victims, res)
	w.noteRecovery(&rep, v)
	return rep, nil
}

func (w *Watchdog) noteRecovery(rep *SupervisionReport, v Verdict) {
	if v == VerdictConverged {
		rep.Recovered = true
		w.Obs.Add(obs.CounterWatchdogRecovered, 1)
	}
}

func (w *Watchdog) factor() int {
	if w.EscalateFactor < 2 {
		return 4
	}
	return w.EscalateFactor
}

func (w *Watchdog) flapMin() int {
	if w.FlapThreshold < 1 {
		return 3
	}
	return w.FlapThreshold
}

// churnWindow sizes the unstable-speaker lookback from the detected cycle
// (a full period plus one round), defaulting to 2.
func churnWindow(res routing.BGPResult) int {
	if res.CycleLen > 1 {
		return res.CycleLen + 1
	}
	return 2
}

// resetTargets picks the speakers to soft-reset: the endpoints of every
// flapping session, else the selection-unstable speakers, else everyone.
func (w *Watchdog) resetTargets(lab *Lab, res routing.BGPResult) []string {
	seen := map[string]bool{}
	var out []string
	for _, pair := range lab.FlappingSessions(w.flapMin()) {
		for _, h := range pair {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	if len(out) > 0 {
		sort.Strings(out)
		return out
	}
	if unstable := lab.UnstableSpeakers(churnWindow(res)); len(unstable) > 0 {
		return unstable
	}
	return lab.LiveVMNames()
}

// quarantineVictims picks the machines to remove: a greedy cover of the
// flapping sessions (most-implicated host first, ties lexicographic),
// falling back to the first selection-unstable speaker. Empty when nothing
// is implicated — the ladder then gives up rather than guess.
func (w *Watchdog) quarantineVictims(lab *Lab, res routing.BGPResult) []string {
	flaps := lab.FlappingSessions(w.flapMin())
	if len(flaps) == 0 {
		if unstable := lab.UnstableSpeakers(churnWindow(res)); len(unstable) > 0 {
			return unstable[:1]
		}
		return nil
	}
	var victims []string
	uncovered := flaps
	for len(uncovered) > 0 {
		count := map[string]int{}
		for _, pair := range uncovered {
			count[pair[0]]++
			count[pair[1]]++
		}
		best := ""
		for h, n := range count {
			if best == "" || n > count[best] || (n == count[best] && h < best) {
				best = h
			}
		}
		victims = append(victims, best)
		var rest [][2]string
		for _, pair := range uncovered {
			if pair[0] != best && pair[1] != best {
				rest = append(rest, pair)
			}
		}
		uncovered = rest
	}
	sort.Strings(victims)
	return victims
}
