// Package emul implements the emulation platform substrate: labs of
// virtual machines that boot from the *rendered configuration tree*
// (lab.conf, startup scripts, per-daemon config files), recover their
// protocol state by parsing those files, and run the routing engines and
// data plane of internal/routing and internal/dataplane. This substitutes
// for the paper's Netkit/UML deployment while preserving the property that
// matters: the generated configurations are executed, so generation errors
// surface as network misbehaviour.
//
// The ingestion parsers run in error-recovery mode: a malformed statement
// is recorded as a located Diagnostic and the parse continues with the
// next stanza, so one boot reports every problem in a device's
// configuration at once instead of dying on the first bad byte.
//
// Reconvergence after incident injection is full-recompute by default.
// BootOptions.Incremental (or Lab.SetIncremental) switches the lab to
// incremental reconvergence — delta SPF in the IGP domains, BGP trajectory
// replay, and data-plane node reuse — which produces byte-identical
// routing tables, verdicts and event logs while skipping the recomputation
// of state the incident provably did not touch. See the routing package
// for the per-engine mechanics and ARCHITECTURE.md ("Incremental
// convergence") for the invariants and the determinism argument.
package emul

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// parseQuaggaVM recovers a DeviceConfig from a Netkit/Quagga machine's
// files: the .startup script (interface addressing) plus
// etc/quagga/{daemons,ospfd.conf,bgpd.conf,isisd.conf}. It never fails
// fast: all problems with the machine's files are returned as
// diagnostics, and the returned config is usable only when none of them
// is error-level.
func parseQuaggaVM(hostname string, files map[string]string) (*routing.DeviceConfig, Diagnostics) {
	dc := &routing.DeviceConfig{Hostname: hostname}
	var all Diagnostics

	startupFile := hostname + ".startup"
	sink := &diagSink{device: hostname, file: startupFile}
	startup, ok := files[startupFile]
	if !ok {
		sink.errorf(0, "no startup script")
	} else {
		parseStartup(dc, startup, sink)
	}
	all = append(all, sink.diags...)

	daemons := files["etc/quagga/daemons"]
	enabled := map[string]bool{}
	for _, line := range strings.Split(daemons, "\n") {
		line = strings.TrimSpace(line)
		if name, val, ok := strings.Cut(line, "="); ok && strings.TrimSpace(val) == "yes" {
			enabled[strings.TrimSpace(name)] = true
		}
	}
	daemonParsers := []struct {
		daemon string
		file   string
		parse  func(*routing.DeviceConfig, string, *diagSink)
	}{
		{"ospfd", "etc/quagga/ospfd.conf", parseQuaggaOspfd},
		{"bgpd", "etc/quagga/bgpd.conf", parseQuaggaBgpd},
		{"isisd", "etc/quagga/isisd.conf", parseQuaggaIsisd},
	}
	for _, dp := range daemonParsers {
		if !enabled[dp.daemon] {
			continue
		}
		sink := &diagSink{device: hostname, file: dp.file}
		conf, ok := files[dp.file]
		if !ok {
			sink.errorf(0, "%s enabled but %s missing", dp.daemon, dp.file)
		} else {
			dp.parse(dc, conf, sink)
		}
		all = append(all, sink.diags...)
	}
	// Whole-device validation only makes sense over a fully parsed config;
	// when stanzas were already rejected, their diagnostics carry the cause.
	if !all.HasErrors() {
		if err := dc.Validate(); err != nil {
			all = append(all, Diagnostic{Severity: SevError, Device: hostname, Message: err.Error()})
		}
	}
	return dc, all
}

// parseStartup reads `/sbin/ifconfig <if> <addr> netmask <mask> ... up`
// lines — the interface addressing of the booted machine. Bad lines are
// recorded and skipped.
func parseStartup(dc *routing.DeviceConfig, startup string, sink *diagSink) {
	for lineNo, line := range strings.Split(startup, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 5 && strings.HasSuffix(fields[0], "route") &&
			fields[1] == "add" && fields[2] == "default" && fields[3] == "gw" {
			gw, err := netip.ParseAddr(fields[4])
			if err != nil {
				sink.errorf(lineNo+1, "bad gateway %q", fields[4])
				continue
			}
			dc.Gateway = gw
			continue
		}
		if len(fields) < 3 || !strings.HasSuffix(fields[0], "ifconfig") {
			continue
		}
		ifName := fields[1]
		addr, err := netip.ParseAddr(fields[2])
		if err != nil {
			sink.errorf(lineNo+1, "bad address %q", fields[2])
			continue
		}
		bits := 32
		badMask := false
		for i := 3; i+1 < len(fields); i++ {
			if fields[i] == "netmask" {
				b, err := maskBits(fields[i+1])
				if err != nil {
					sink.errorf(lineNo+1, "%v", err)
					badMask = true
					break
				}
				bits = b
			}
		}
		if badMask {
			continue
		}
		if strings.HasPrefix(ifName, "lo") {
			dc.Loopback = addr
			dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
				Name: "lo", Addr: addr, Prefix: netip.PrefixFrom(addr, 32), Cost: 1,
			})
			continue
		}
		dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
			Name: ifName, Addr: addr,
			Prefix: netip.PrefixFrom(addr, bits).Masked(), Cost: 1,
		})
	}
}

// maskBits converts a dotted netmask to a prefix length.
func maskBits(mask string) (int, error) {
	a, err := netip.ParseAddr(mask)
	if err != nil || !a.Is4() {
		return 0, fmt.Errorf("bad netmask %q", mask)
	}
	b := a.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	bits := 0
	for v&0x80000000 != 0 {
		bits++
		v <<= 1
	}
	if v != 0 {
		return 0, fmt.Errorf("non-contiguous netmask %q", mask)
	}
	return bits, nil
}

// parseQuaggaOspfd reads interface costs and `router ospf` network
// statements, recording malformed statements and continuing.
func parseQuaggaOspfd(dc *routing.DeviceConfig, conf string, sink *diagSink) {
	dc.OSPF = &routing.OSPFConfig{ProcessID: 1}
	curIface := ""
	inRouter := false
	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "interface" && len(fields) >= 2:
			curIface = fields[1]
			inRouter = false
		case fields[0] == "router" && len(fields) >= 2 && fields[1] == "ospf":
			inRouter = true
			curIface = ""
		case curIface != "" && strings.HasPrefix(line, "ip ospf cost") && len(fields) == 4:
			cost, err := strconv.Atoi(fields[3])
			if err != nil {
				sink.errorf(lineNo+1, "bad cost %q", fields[3])
				continue
			}
			for i := range dc.Interfaces {
				if dc.Interfaces[i].Name == curIface {
					dc.Interfaces[i].Cost = cost
				}
			}
		case inRouter && fields[0] == "passive-interface" && len(fields) == 2:
			for i := range dc.Interfaces {
				if dc.Interfaces[i].Name == fields[1] {
					dc.Interfaces[i].Passive = true
				}
			}
		case inRouter && fields[0] == "network" && len(fields) == 4 && fields[2] == "area":
			p, err := netip.ParsePrefix(fields[1])
			if err != nil {
				sink.errorf(lineNo+1, "bad network %q", fields[1])
				continue
			}
			area, err := strconv.Atoi(fields[3])
			if err != nil {
				sink.errorf(lineNo+1, "bad area %q", fields[3])
				continue
			}
			dc.OSPF.Networks = append(dc.OSPF.Networks, routing.OSPFNetwork{Prefix: p.Masked(), Area: area})
		}
	}
}

// parseQuaggaIsisd reads the `router isis` block (NET address) and the
// interfaces enabled with `ip router isis`.
func parseQuaggaIsisd(dc *routing.DeviceConfig, conf string, sink *diagSink) {
	cfg := &routing.ISISConfig{}
	curIface := ""
	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "interface" && len(fields) >= 2:
			curIface = fields[1]
		case fields[0] == "router" && len(fields) >= 3 && fields[1] == "isis":
			curIface = ""
		case fields[0] == "net" && len(fields) == 2:
			cfg.NET = fields[1]
		case curIface != "" && strings.HasPrefix(line, "ip router isis"):
			cfg.Interfaces = append(cfg.Interfaces, curIface)
		case fields[0] == "hostname", fields[0] == "password", fields[0] == "metric-style":
			// header / cosmetic statements
		default:
			if strings.HasPrefix(line, "net ") {
				sink.errorf(lineNo+1, "malformed net %q", line)
			}
		}
	}
	if cfg.NET == "" {
		sink.errorf(0, "isisd.conf has no NET address")
		return
	}
	dc.ISIS = cfg
}

// parseQuaggaBgpd reads the `router bgp` block plus route-maps for MED and
// local-pref policies.
func parseQuaggaBgpd(dc *routing.DeviceConfig, conf string, sink *diagSink) {
	bgp := &routing.BGPConfig{}
	type rmapRef struct {
		nbr  netip.Addr
		name string
		out  bool
		line int
	}
	var rmapRefs []rmapRef
	rmapValues := map[string][2]int{} // name -> {med, localpref}
	curRmap := ""
	nbrIndex := map[netip.Addr]int{}

	getNbr := func(addr netip.Addr) *routing.BGPNeighbor {
		if i, ok := nbrIndex[addr]; ok {
			return &bgp.Neighbors[i]
		}
		bgp.Neighbors = append(bgp.Neighbors, routing.BGPNeighbor{Addr: addr})
		nbrIndex[addr] = len(bgp.Neighbors) - 1
		return &bgp.Neighbors[len(bgp.Neighbors)-1]
	}

	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "router" && len(fields) >= 3 && fields[1] == "bgp":
			asn, err := strconv.Atoi(fields[2])
			if err != nil {
				sink.errorf(lineNo+1, "bad ASN %q", fields[2])
				continue
			}
			bgp.ASN = asn
			curRmap = ""
		case fields[0] == "bgp" && len(fields) == 3 && fields[1] == "router-id":
			rid, err := netip.ParseAddr(fields[2])
			if err != nil {
				sink.errorf(lineNo+1, "bad router-id %q", fields[2])
				continue
			}
			bgp.RouterID = rid
		case fields[0] == "network" && len(fields) == 2:
			p, err := netip.ParsePrefix(fields[1])
			if err != nil {
				sink.errorf(lineNo+1, "bad network %q", fields[1])
				continue
			}
			bgp.Networks = append(bgp.Networks, p.Masked())
		case fields[0] == "neighbor" && len(fields) >= 3:
			addr, err := netip.ParseAddr(fields[1])
			if err != nil {
				sink.errorf(lineNo+1, "bad neighbor %q", fields[1])
				continue
			}
			nbr := getNbr(addr)
			switch fields[2] {
			case "remote-as":
				if len(fields) < 4 {
					sink.errorf(lineNo+1, "remote-as without ASN")
					continue
				}
				asn, err := strconv.Atoi(fields[3])
				if err != nil {
					sink.errorf(lineNo+1, "bad remote-as %q", fields[3])
					continue
				}
				nbr.RemoteASN = asn
			case "update-source":
				if len(fields) < 4 {
					sink.errorf(lineNo+1, "update-source without interface")
					continue
				}
				nbr.UpdateSource = fields[3]
			case "route-reflector-client":
				nbr.RRClient = true
			case "description":
				nbr.Description = strings.Join(fields[3:], " ")
			case "route-map":
				if len(fields) < 4 {
					sink.errorf(lineNo+1, "route-map without name")
					continue
				}
				rmapRefs = append(rmapRefs, rmapRef{addr, fields[3], len(fields) > 4 && fields[4] == "out", lineNo + 1})
			}
		case fields[0] == "route-map" && len(fields) >= 2:
			curRmap = fields[1]
			if _, ok := rmapValues[curRmap]; !ok {
				rmapValues[curRmap] = [2]int{}
			}
		case curRmap != "" && fields[0] == "set" && len(fields) >= 3:
			v, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil {
				sink.errorf(lineNo+1, "bad set value %q", fields[len(fields)-1])
				continue
			}
			vals := rmapValues[curRmap]
			switch fields[1] {
			case "metric":
				vals[0] = v
			case "local-preference":
				vals[1] = v
			}
			rmapValues[curRmap] = vals
		}
	}
	// Apply route-maps to neighbors.
	for _, ref := range rmapRefs {
		vals, ok := rmapValues[ref.name]
		if !ok {
			sink.errorf(ref.line, "neighbor %v references undefined route-map %q", ref.nbr, ref.name)
			continue
		}
		nbr := getNbr(ref.nbr)
		if ref.out {
			nbr.MEDOut = vals[0]
		} else {
			nbr.LocalPrefIn = vals[1]
		}
	}
	if bgp.ASN == 0 {
		sink.errorf(0, "bgpd.conf has no router bgp block")
		return
	}
	dc.BGP = bgp
}
