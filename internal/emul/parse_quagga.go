// Package emul implements the emulation platform substrate: labs of
// virtual machines that boot from the *rendered configuration tree*
// (lab.conf, startup scripts, per-daemon config files), recover their
// protocol state by parsing those files, and run the routing engines and
// data plane of internal/routing and internal/dataplane. This substitutes
// for the paper's Netkit/UML deployment while preserving the property that
// matters: the generated configurations are executed, so generation errors
// surface as network misbehaviour.
package emul

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// parseQuaggaVM recovers a DeviceConfig from a Netkit/Quagga machine's
// files: the .startup script (interface addressing) plus
// etc/quagga/{daemons,ospfd.conf,bgpd.conf}.
func parseQuaggaVM(hostname string, files map[string]string) (*routing.DeviceConfig, error) {
	dc := &routing.DeviceConfig{Hostname: hostname}
	startup, ok := files[hostname+".startup"]
	if !ok {
		return nil, fmt.Errorf("emul: %s: no startup script", hostname)
	}
	if err := parseStartup(dc, startup); err != nil {
		return nil, err
	}
	daemons := files["etc/quagga/daemons"]
	enabled := map[string]bool{}
	for _, line := range strings.Split(daemons, "\n") {
		line = strings.TrimSpace(line)
		if name, val, ok := strings.Cut(line, "="); ok && strings.TrimSpace(val) == "yes" {
			enabled[strings.TrimSpace(name)] = true
		}
	}
	if enabled["ospfd"] {
		conf, ok := files["etc/quagga/ospfd.conf"]
		if !ok {
			return nil, fmt.Errorf("emul: %s: ospfd enabled but ospfd.conf missing", hostname)
		}
		if err := parseQuaggaOspfd(dc, conf); err != nil {
			return nil, err
		}
	}
	if enabled["bgpd"] {
		conf, ok := files["etc/quagga/bgpd.conf"]
		if !ok {
			return nil, fmt.Errorf("emul: %s: bgpd enabled but bgpd.conf missing", hostname)
		}
		if err := parseQuaggaBgpd(dc, conf); err != nil {
			return nil, err
		}
	}
	if enabled["isisd"] {
		conf, ok := files["etc/quagga/isisd.conf"]
		if !ok {
			return nil, fmt.Errorf("emul: %s: isisd enabled but isisd.conf missing", hostname)
		}
		if err := parseQuaggaIsisd(dc, conf); err != nil {
			return nil, err
		}
	}
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	return dc, nil
}

// parseStartup reads `/sbin/ifconfig <if> <addr> netmask <mask> ... up`
// lines — the interface addressing of the booted machine.
func parseStartup(dc *routing.DeviceConfig, startup string) error {
	for lineNo, line := range strings.Split(startup, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 5 && strings.HasSuffix(fields[0], "route") &&
			fields[1] == "add" && fields[2] == "default" && fields[3] == "gw" {
			gw, err := netip.ParseAddr(fields[4])
			if err != nil {
				return fmt.Errorf("emul: %s startup line %d: bad gateway %q", dc.Hostname, lineNo+1, fields[4])
			}
			dc.Gateway = gw
			continue
		}
		if len(fields) < 3 || !strings.HasSuffix(fields[0], "ifconfig") {
			continue
		}
		ifName := fields[1]
		addr, err := netip.ParseAddr(fields[2])
		if err != nil {
			return fmt.Errorf("emul: %s startup line %d: bad address %q", dc.Hostname, lineNo+1, fields[2])
		}
		bits := 32
		for i := 3; i+1 < len(fields); i++ {
			if fields[i] == "netmask" {
				b, err := maskBits(fields[i+1])
				if err != nil {
					return fmt.Errorf("emul: %s startup line %d: %w", dc.Hostname, lineNo+1, err)
				}
				bits = b
			}
		}
		if strings.HasPrefix(ifName, "lo") {
			dc.Loopback = addr
			dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
				Name: "lo", Addr: addr, Prefix: netip.PrefixFrom(addr, 32), Cost: 1,
			})
			continue
		}
		dc.Interfaces = append(dc.Interfaces, routing.InterfaceConfig{
			Name: ifName, Addr: addr,
			Prefix: netip.PrefixFrom(addr, bits).Masked(), Cost: 1,
		})
	}
	return nil
}

// maskBits converts a dotted netmask to a prefix length.
func maskBits(mask string) (int, error) {
	a, err := netip.ParseAddr(mask)
	if err != nil || !a.Is4() {
		return 0, fmt.Errorf("bad netmask %q", mask)
	}
	b := a.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	bits := 0
	for v&0x80000000 != 0 {
		bits++
		v <<= 1
	}
	if v != 0 {
		return 0, fmt.Errorf("non-contiguous netmask %q", mask)
	}
	return bits, nil
}

// parseQuaggaOspfd reads interface costs and `router ospf` network
// statements.
func parseQuaggaOspfd(dc *routing.DeviceConfig, conf string) error {
	dc.OSPF = &routing.OSPFConfig{ProcessID: 1}
	curIface := ""
	inRouter := false
	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "interface" && len(fields) >= 2:
			curIface = fields[1]
			inRouter = false
		case fields[0] == "router" && len(fields) >= 2 && fields[1] == "ospf":
			inRouter = true
			curIface = ""
		case curIface != "" && strings.HasPrefix(line, "ip ospf cost") && len(fields) == 4:
			cost, err := strconv.Atoi(fields[3])
			if err != nil {
				return fmt.Errorf("emul: %s ospfd line %d: bad cost %q", dc.Hostname, lineNo+1, fields[3])
			}
			for i := range dc.Interfaces {
				if dc.Interfaces[i].Name == curIface {
					dc.Interfaces[i].Cost = cost
				}
			}
		case inRouter && fields[0] == "passive-interface" && len(fields) == 2:
			for i := range dc.Interfaces {
				if dc.Interfaces[i].Name == fields[1] {
					dc.Interfaces[i].Passive = true
				}
			}
		case inRouter && fields[0] == "network" && len(fields) == 4 && fields[2] == "area":
			p, err := netip.ParsePrefix(fields[1])
			if err != nil {
				return fmt.Errorf("emul: %s ospfd line %d: bad network %q", dc.Hostname, lineNo+1, fields[1])
			}
			area, err := strconv.Atoi(fields[3])
			if err != nil {
				return fmt.Errorf("emul: %s ospfd line %d: bad area %q", dc.Hostname, lineNo+1, fields[3])
			}
			dc.OSPF.Networks = append(dc.OSPF.Networks, routing.OSPFNetwork{Prefix: p.Masked(), Area: area})
		}
	}
	return nil
}

// parseQuaggaIsisd reads the `router isis` block (NET address) and the
// interfaces enabled with `ip router isis`.
func parseQuaggaIsisd(dc *routing.DeviceConfig, conf string) error {
	cfg := &routing.ISISConfig{}
	curIface := ""
	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "interface" && len(fields) >= 2:
			curIface = fields[1]
		case fields[0] == "router" && len(fields) >= 3 && fields[1] == "isis":
			curIface = ""
		case fields[0] == "net" && len(fields) == 2:
			cfg.NET = fields[1]
		case curIface != "" && strings.HasPrefix(line, "ip router isis"):
			cfg.Interfaces = append(cfg.Interfaces, curIface)
		case fields[0] == "hostname", fields[0] == "password", fields[0] == "metric-style":
			// header / cosmetic statements
		default:
			if strings.HasPrefix(line, "net ") {
				return fmt.Errorf("emul: %s isisd line %d: malformed net %q", dc.Hostname, lineNo+1, line)
			}
		}
	}
	if cfg.NET == "" {
		return fmt.Errorf("emul: %s: isisd.conf has no NET address", dc.Hostname)
	}
	dc.ISIS = cfg
	return nil
}

// parseQuaggaBgpd reads the `router bgp` block plus route-maps for MED and
// local-pref policies.
func parseQuaggaBgpd(dc *routing.DeviceConfig, conf string) error {
	bgp := &routing.BGPConfig{}
	type rmapRef struct {
		nbr  netip.Addr
		name string
		out  bool
	}
	var rmapRefs []rmapRef
	rmapValues := map[string][2]int{} // name -> {med, localpref}
	curRmap := ""
	nbrIndex := map[netip.Addr]int{}

	getNbr := func(addr netip.Addr) *routing.BGPNeighbor {
		if i, ok := nbrIndex[addr]; ok {
			return &bgp.Neighbors[i]
		}
		bgp.Neighbors = append(bgp.Neighbors, routing.BGPNeighbor{Addr: addr})
		nbrIndex[addr] = len(bgp.Neighbors) - 1
		return &bgp.Neighbors[len(bgp.Neighbors)-1]
	}

	for lineNo, raw := range strings.Split(conf, "\n") {
		line := strings.TrimSpace(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "router" && len(fields) >= 3 && fields[1] == "bgp":
			asn, err := strconv.Atoi(fields[2])
			if err != nil {
				return fmt.Errorf("emul: %s bgpd line %d: bad ASN %q", dc.Hostname, lineNo+1, fields[2])
			}
			bgp.ASN = asn
			curRmap = ""
		case fields[0] == "bgp" && len(fields) == 3 && fields[1] == "router-id":
			rid, err := netip.ParseAddr(fields[2])
			if err != nil {
				return fmt.Errorf("emul: %s bgpd line %d: bad router-id", dc.Hostname, lineNo+1)
			}
			bgp.RouterID = rid
		case fields[0] == "network" && len(fields) == 2:
			p, err := netip.ParsePrefix(fields[1])
			if err != nil {
				return fmt.Errorf("emul: %s bgpd line %d: bad network %q", dc.Hostname, lineNo+1, fields[1])
			}
			bgp.Networks = append(bgp.Networks, p.Masked())
		case fields[0] == "neighbor" && len(fields) >= 3:
			addr, err := netip.ParseAddr(fields[1])
			if err != nil {
				return fmt.Errorf("emul: %s bgpd line %d: bad neighbor %q", dc.Hostname, lineNo+1, fields[1])
			}
			nbr := getNbr(addr)
			switch fields[2] {
			case "remote-as":
				asn, err := strconv.Atoi(fields[3])
				if err != nil {
					return fmt.Errorf("emul: %s bgpd line %d: bad remote-as", dc.Hostname, lineNo+1)
				}
				nbr.RemoteASN = asn
			case "update-source":
				nbr.UpdateSource = fields[3]
			case "route-reflector-client":
				nbr.RRClient = true
			case "description":
				nbr.Description = strings.Join(fields[3:], " ")
			case "route-map":
				rmapRefs = append(rmapRefs, rmapRef{addr, fields[3], len(fields) > 4 && fields[4] == "out"})
			}
		case fields[0] == "route-map" && len(fields) >= 2:
			curRmap = fields[1]
			if _, ok := rmapValues[curRmap]; !ok {
				rmapValues[curRmap] = [2]int{}
			}
		case curRmap != "" && fields[0] == "set" && len(fields) >= 3:
			v, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil {
				return fmt.Errorf("emul: %s bgpd line %d: bad set value", dc.Hostname, lineNo+1)
			}
			vals := rmapValues[curRmap]
			switch fields[1] {
			case "metric":
				vals[0] = v
			case "local-preference":
				vals[1] = v
			}
			rmapValues[curRmap] = vals
		}
	}
	// Apply route-maps to neighbors.
	for _, ref := range rmapRefs {
		vals, ok := rmapValues[ref.name]
		if !ok {
			return fmt.Errorf("emul: %s: neighbor %v references undefined route-map %q", dc.Hostname, ref.nbr, ref.name)
		}
		nbr := getNbr(ref.nbr)
		if ref.out {
			nbr.MEDOut = vals[0]
		} else {
			nbr.LocalPrefIn = vals[1]
		}
	}
	if bgp.ASN == 0 {
		return fmt.Errorf("emul: %s: bgpd.conf has no router bgp block", dc.Hostname)
	}
	dc.BGP = bgp
	return nil
}
