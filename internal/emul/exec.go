package emul

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Exec runs a command on a machine and returns its textual output — the
// interface the measurement client drives (§5.7). The emulated commands
// produce the same output formats as their real counterparts, so the
// measurement system parses text exactly as it would against Netkit.
//
// Supported commands:
//
//	traceroute -naU <dst>       Linux traceroute (numeric, no DNS)
//	ping -c 1 <dst>             reachability probe
//	show ip ospf neighbor       Quagga vtysh
//	show ip bgp                 Quagga vtysh
//	show ip route               kernel/zebra table
func (l *Lab) Exec(machine, command string) (string, error) {
	// Hold the read lock for the whole command: measurement clients run
	// Exec from many goroutines while incident injection re-converges the
	// lab under the write lock.
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.started {
		return "", fmt.Errorf("emul: lab not started")
	}
	vm, ok := l.vms[machine]
	if !ok {
		return "", fmt.Errorf("emul: no machine %q", machine)
	}
	if vm.Config == nil {
		return "", fmt.Errorf("emul: machine %q was quarantined at boot", machine)
	}
	fields := strings.Fields(command)
	if len(fields) == 0 {
		return "", fmt.Errorf("emul: empty command")
	}
	switch fields[0] {
	case "traceroute":
		return l.execTraceroute(vm, fields[1:])
	case "ping":
		return l.execPing(vm, fields[1:])
	case "show":
		return l.execShow(vm, fields[1:])
	}
	return "", fmt.Errorf("emul: %s: command not found: %s", machine, fields[0])
}

func (l *Lab) execTraceroute(vm *VM, args []string) (string, error) {
	if l.net == nil {
		return "", fmt.Errorf("emul: platform %s has no data plane", l.Platform)
	}
	var dst netip.Addr
	maxTTL := 30
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue // -n -a -U etc: output is already numeric
		}
		d, err := netip.ParseAddr(a)
		if err != nil {
			return "", fmt.Errorf("emul: traceroute: bad destination %q", a)
		}
		dst = d
	}
	if !dst.IsValid() {
		return "", fmt.Errorf("emul: traceroute: no destination")
	}
	res := l.net.Forward(vm.Name, dst, maxTTL)
	return res.TracerouteText(), nil
}

func (l *Lab) execPing(vm *VM, args []string) (string, error) {
	if l.net == nil {
		return "", fmt.Errorf("emul: platform %s has no data plane", l.Platform)
	}
	var dst netip.Addr
	for _, a := range args {
		if strings.HasPrefix(a, "-") || a == "1" {
			continue
		}
		d, err := netip.ParseAddr(a)
		if err != nil {
			return "", fmt.Errorf("emul: ping: bad destination %q", a)
		}
		dst = d
	}
	if !dst.IsValid() {
		return "", fmt.Errorf("emul: ping: no destination")
	}
	if l.net.Ping(vm.Name, dst) {
		return fmt.Sprintf("PING %v: 1 packets transmitted, 1 received, 0%% packet loss\n", dst), nil
	}
	return fmt.Sprintf("PING %v: 1 packets transmitted, 0 received, 100%% packet loss\n", dst), nil
}

func (l *Lab) execShow(vm *VM, args []string) (string, error) {
	cmd := strings.Join(args, " ")
	switch cmd {
	case "ip ospf neighbor":
		return l.showOSPFNeighbors(vm), nil
	case "isis neighbor":
		return l.showISISNeighbors(vm), nil
	case "ip bgp":
		return l.showBGP(vm), nil
	case "ip route":
		return l.showRoutes(vm), nil
	}
	return "", fmt.Errorf("emul: unknown show command %q", cmd)
}

// showOSPFNeighbors mirrors Quagga's `show ip ospf neighbor` column layout.
func (l *Lab) showOSPFNeighbors(vm *VM) string {
	var sb strings.Builder
	sb.WriteString("Neighbor ID     Pri State           Dead Time Address         Interface\n")
	for _, nbr := range l.ospfNeighbors(vm.Name) {
		fmt.Fprintf(&sb, "%-15s   1 Full/DR         00:00:33 %-15s %s\n",
			nbr.RouterID, nbr.Addr, nbr.Iface)
	}
	return sb.String()
}

// showISISNeighbors mirrors Quagga's `show isis neighbor` layout.
func (l *Lab) showISISNeighbors(vm *VM) string {
	var sb strings.Builder
	sb.WriteString("System Id       Interface   State  Type\n")
	for _, nbr := range l.isisNeighbors(vm.Name) {
		fmt.Fprintf(&sb, "%-15s %-11s Up     L2\n", nbr.Hostname, nbr.Iface)
	}
	return sb.String()
}

// showBGP mirrors the `show ip bgp` table shape.
func (l *Lab) showBGP(vm *VM) string {
	var sb strings.Builder
	sb.WriteString("   Network          Next Hop            Metric LocPrf Path\n")
	for _, rt := range l.bgpRoutes(vm.Name) {
		path := make([]string, len(rt.ASPath))
		for i, a := range rt.ASPath {
			path[i] = fmt.Sprint(a)
		}
		nh := "0.0.0.0"
		if rt.NextHop.IsValid() {
			nh = rt.NextHop.String()
		}
		fmt.Fprintf(&sb, "*> %-16s %-19s %6d %6d %s i\n",
			rt.Prefix, nh, rt.MED, rt.LocalPref, strings.Join(path, " "))
	}
	return sb.String()
}

// showRoutes lists the FIB in `show ip route`-like lines.
func (l *Lab) showRoutes(vm *VM) string {
	if l.net == nil {
		return ""
	}
	node, ok := l.net.Node(vm.Name)
	if !ok {
		return ""
	}
	entries := node.FIB.Entries()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Prefix.Addr() != entries[j].Prefix.Addr() {
			return entries[i].Prefix.Addr().Less(entries[j].Prefix.Addr())
		}
		return entries[i].Prefix.Bits() < entries[j].Prefix.Bits()
	})
	var sb strings.Builder
	for _, e := range entries {
		switch {
		case e.Connected:
			fmt.Fprintf(&sb, "C>* %s is directly connected, %s\n", e.Prefix, e.OutIf)
		case e.OutIf != "":
			fmt.Fprintf(&sb, "O>* %s via %s, %s\n", e.Prefix, e.NextHop, e.OutIf)
		default:
			fmt.Fprintf(&sb, "B>* %s via %s\n", e.Prefix, e.NextHop)
		}
	}
	return sb.String()
}
