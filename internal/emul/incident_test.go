package emul

import (
	"net/netip"
	"strings"
	"testing"

	"autonetkit/internal/ipalloc"
)

// incidentLab deploys the fig5 network and returns it with the allocation.
func incidentLab(t *testing.T) (*Lab, *ipalloc.Result) {
	t.Helper()
	return startedLab(t, "netkit", "quagga")
}

func TestFailLinkReroutes(t *testing.T) {
	lab, alloc := incidentLab(t)
	lb3 := alloc.Overlay.Node("r3").Get(ipalloc.AttrLoopback).(netip.Addr)

	// Before: r1 reaches r3's loopback directly (one hop).
	before, err := lab.Exec("r1", "traceroute -naU "+lb3.String())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(before, " ms") != 1 {
		t.Fatalf("pre-incident path not direct:\n%s", before)
	}

	if err := lab.FailLink("r1", "r3"); err != nil {
		t.Fatal(err)
	}

	// After: still reachable, but via a longer path (r2-r4-r3 or similar).
	after, err := lab.Exec("r1", "traceroute -naU "+lb3.String())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(after, "* * *") {
		t.Fatalf("post-incident unreachable:\n%s", after)
	}
	if hops := strings.Count(after, " ms"); hops < 2 {
		t.Errorf("post-incident path should be longer, got %d hops:\n%s", hops, after)
	}
	// OSPF adjacency between r1 and r3 is gone.
	for _, nbr := range lab.OSPFNeighbors("r1") {
		if nbr.Hostname == "r3" {
			t.Error("adjacency survived link failure")
		}
	}
	// The incident is in the event log.
	if !strings.Contains(strings.Join(lab.Events(), "\n"), "INCIDENT: link r1 -- r3") {
		t.Error("incident not logged")
	}
}

func TestFailLinkPartitionsEBGP(t *testing.T) {
	lab, alloc := incidentLab(t)
	// Fail both inter-AS links: AS2 (r5) becomes unreachable from AS1.
	if err := lab.FailLink("r3", "r5"); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailLink("r4", "r5"); err != nil {
		t.Fatal(err)
	}
	lb5 := alloc.Overlay.Node("r5").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("r1", "ping -c 1 "+lb5.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100% packet loss") {
		t.Errorf("partitioned AS still reachable:\n%s", out)
	}
	// r1 no longer holds AS2 routes.
	for _, rt := range lab.BGPRoutes("r1") {
		if len(rt.ASPath) > 0 && rt.ASPath[0] == 2 {
			t.Errorf("stale AS2 route survived partition: %+v", rt)
		}
	}
}

func TestFailNode(t *testing.T) {
	lab, alloc := incidentLab(t)
	// r3 down: r1 still reaches r4 via r2.
	if err := lab.FailNode("r3"); err != nil {
		t.Fatal(err)
	}
	lb4 := alloc.Overlay.Node("r4").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("r1", "ping -c 1 "+lb4.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, " 1 received") {
		t.Errorf("r4 unreachable after r3 failure:\n%s", out)
	}
	// And r3's loopback is gone from everyone's view.
	lb3 := alloc.Overlay.Node("r3").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, _ = lab.Exec("r1", "ping -c 1 "+lb3.String())
	if !strings.Contains(out, "100% packet loss") {
		t.Errorf("failed node still reachable:\n%s", out)
	}
}

func TestIncidentErrors(t *testing.T) {
	lab, _ := buildLab(t, "netkit", "quagga")
	if err := lab.FailLink("r1", "r2"); err == nil {
		t.Error("incident before start accepted")
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailLink("r1", "ghost"); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := lab.FailLink("ghost", "r1"); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := lab.FailLink("r1", "r5"); err == nil {
		t.Error("non-adjacent pair accepted")
	}
	if err := lab.FailNode("ghost"); err == nil {
		t.Error("unknown machine accepted")
	}
	// Double failure of the same link: the subnet is gone.
	if err := lab.FailLink("r1", "r2"); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailLink("r1", "r2"); err == nil {
		t.Error("re-failing a dead link accepted")
	}
	// Node with no remaining data interfaces.
	if err := lab.FailNode("r1"); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailNode("r1"); err == nil {
		t.Error("re-failing a dead node accepted")
	}
}

func TestIncidentUnsupportedOnCBGP(t *testing.T) {
	lab, _ := startedLab(t, "cbgp", "cbgp")
	names := lab.VMNames()
	if err := lab.FailLink(names[0], names[1]); err == nil {
		t.Error("cbgp incident accepted")
	}
	if err := lab.FailNode(names[0]); err == nil {
		t.Error("cbgp node failure accepted")
	}
}
