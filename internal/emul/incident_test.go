package emul

import (
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"

	"autonetkit/internal/ipalloc"
	"autonetkit/internal/routing"
)

// incidentLab deploys the fig5 network and returns it with the allocation.
func incidentLab(t *testing.T) (*Lab, *ipalloc.Result) {
	t.Helper()
	return startedLab(t, "netkit", "quagga")
}

func TestFailLinkReroutes(t *testing.T) {
	lab, alloc := incidentLab(t)
	lb3 := alloc.Overlay.Node("r3").Get(ipalloc.AttrLoopback).(netip.Addr)

	// Before: r1 reaches r3's loopback directly (one hop).
	before, err := lab.Exec("r1", "traceroute -naU "+lb3.String())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(before, " ms") != 1 {
		t.Fatalf("pre-incident path not direct:\n%s", before)
	}

	if err := lab.FailLink("r1", "r3"); err != nil {
		t.Fatal(err)
	}

	// After: still reachable, but via a longer path (r2-r4-r3 or similar).
	after, err := lab.Exec("r1", "traceroute -naU "+lb3.String())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(after, "* * *") {
		t.Fatalf("post-incident unreachable:\n%s", after)
	}
	if hops := strings.Count(after, " ms"); hops < 2 {
		t.Errorf("post-incident path should be longer, got %d hops:\n%s", hops, after)
	}
	// OSPF adjacency between r1 and r3 is gone.
	for _, nbr := range lab.OSPFNeighbors("r1") {
		if nbr.Hostname == "r3" {
			t.Error("adjacency survived link failure")
		}
	}
	// The incident is in the event log.
	if !strings.Contains(strings.Join(lab.Events(), "\n"), "INCIDENT #1: link r1 -- r3") {
		t.Error("incident not logged")
	}
}

func TestFailLinkPartitionsEBGP(t *testing.T) {
	lab, alloc := incidentLab(t)
	// Fail both inter-AS links: AS2 (r5) becomes unreachable from AS1.
	if err := lab.FailLink("r3", "r5"); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailLink("r4", "r5"); err != nil {
		t.Fatal(err)
	}
	lb5 := alloc.Overlay.Node("r5").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("r1", "ping -c 1 "+lb5.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100% packet loss") {
		t.Errorf("partitioned AS still reachable:\n%s", out)
	}
	// r1 no longer holds AS2 routes.
	for _, rt := range lab.BGPRoutes("r1") {
		if len(rt.ASPath) > 0 && rt.ASPath[0] == 2 {
			t.Errorf("stale AS2 route survived partition: %+v", rt)
		}
	}
}

func TestFailNode(t *testing.T) {
	lab, alloc := incidentLab(t)
	// r3 down: r1 still reaches r4 via r2.
	if err := lab.FailNode("r3"); err != nil {
		t.Fatal(err)
	}
	lb4 := alloc.Overlay.Node("r4").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("r1", "ping -c 1 "+lb4.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, " 1 received") {
		t.Errorf("r4 unreachable after r3 failure:\n%s", out)
	}
	// And r3's loopback is gone from everyone's view.
	lb3 := alloc.Overlay.Node("r3").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, _ = lab.Exec("r1", "ping -c 1 "+lb3.String())
	if !strings.Contains(out, "100% packet loss") {
		t.Errorf("failed node still reachable:\n%s", out)
	}
}

func TestIncidentErrors(t *testing.T) {
	lab, _ := buildLab(t, "netkit", "quagga")
	if err := lab.FailLink("r1", "r2"); err == nil {
		t.Error("incident before start accepted")
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailLink("r1", "ghost"); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := lab.FailLink("ghost", "r1"); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := lab.FailLink("r1", "r5"); err == nil {
		t.Error("non-adjacent pair accepted")
	}
	if err := lab.FailNode("ghost"); err == nil {
		t.Error("unknown machine accepted")
	}
	// Double failure of the same link: the subnet is gone.
	if err := lab.FailLink("r1", "r2"); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailLink("r1", "r2"); err == nil {
		t.Error("re-failing a dead link accepted")
	}
	// Node with no remaining data interfaces.
	if err := lab.FailNode("r1"); err != nil {
		t.Fatal(err)
	}
	if err := lab.FailNode("r1"); err == nil {
		t.Error("re-failing a dead node accepted")
	}
}

// multiSubnetLab hand-builds a two-router lab whose routers share TWO
// subnets (parallel circuits), which the graph pipeline cannot express —
// exercising the all-shared-subnets failure path.
func multiSubnetLab(t *testing.T) *Lab {
	t.Helper()
	mk := func(name string, lastOctet int) *routing.DeviceConfig {
		lb := netip.MustParseAddr(fmt.Sprintf("10.0.0.%d", lastOctet))
		return &routing.DeviceConfig{
			Hostname: name,
			Loopback: lb,
			Interfaces: []routing.InterfaceConfig{
				{Name: "eth0", Addr: netip.MustParseAddr(fmt.Sprintf("10.0.1.%d", lastOctet)), Prefix: netip.MustParsePrefix("10.0.1.0/24"), Cost: 1},
				{Name: "eth1", Addr: netip.MustParseAddr(fmt.Sprintf("10.0.2.%d", lastOctet)), Prefix: netip.MustParsePrefix("10.0.2.0/24"), Cost: 1},
				{Name: "lo", Addr: lb, Prefix: netip.PrefixFrom(lb, 32), Cost: 1},
			},
			OSPF: &routing.OSPFConfig{ProcessID: 1, Networks: []routing.OSPFNetwork{
				{Prefix: netip.MustParsePrefix("10.0.1.0/24")},
				{Prefix: netip.MustParsePrefix("10.0.2.0/24")},
				{Prefix: netip.PrefixFrom(lb, 32)},
			}},
		}
	}
	lab := &Lab{Host: "localhost", Platform: "netkit", vms: map[string]*VM{}}
	for i, name := range []string{"r1", "r2"} {
		lab.vms[name] = &VM{Name: name, Config: mk(name, i+1)}
		lab.order = append(lab.order, name)
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestFailLinkAllSharedSubnets(t *testing.T) {
	lab := multiSubnetLab(t)
	if err := lab.FailLink("r1", "r2"); err != nil {
		t.Fatal(err)
	}
	vm, _ := lab.VM("r1")
	for _, ic := range vm.Config.Interfaces {
		if ic.Name != "lo" {
			t.Errorf("interface %s survived multi-subnet link failure", ic.Name)
		}
	}
	// Both subnets are logged individually.
	events := strings.Join(lab.Events(), "\n")
	for _, want := range []string{
		"INCIDENT #1: link r1 -- r2 (10.0.1.0/24) failed",
		"INCIDENT #1: link r1 -- r2 (10.0.2.0/24) failed",
	} {
		if !strings.Contains(events, want) {
			t.Errorf("event log missing %q:\n%s", want, events)
		}
	}
	if len(lab.OSPFNeighbors("r1")) != 0 {
		t.Error("adjacency survived failing every shared subnet")
	}
}

func TestFailLinkSubnet(t *testing.T) {
	lab := multiSubnetLab(t)
	// Fail only one of the two parallel circuits.
	if err := lab.FailLinkSubnet("r1", "r2", netip.MustParsePrefix("10.0.1.0/24")); err != nil {
		t.Fatal(err)
	}
	vm, _ := lab.VM("r1")
	if len(vm.Config.Interfaces) != 2 { // eth1 + lo
		t.Fatalf("interfaces = %d, want 2", len(vm.Config.Interfaces))
	}
	// The second circuit keeps the adjacency up.
	if len(lab.OSPFNeighbors("r1")) != 1 {
		t.Errorf("neighbors = %+v, want one surviving adjacency", lab.OSPFNeighbors("r1"))
	}
	// A subnet the pair does not share is rejected.
	if err := lab.FailLinkSubnet("r1", "r2", netip.MustParsePrefix("10.9.9.0/24")); err == nil {
		t.Error("unshared subnet accepted")
	}
	if err := lab.FailLinkSubnet("r1", "r2", netip.Prefix{}); err == nil {
		t.Error("invalid subnet accepted")
	}
	// RestoreLink re-installs only the failed circuit.
	if err := lab.RestoreLink("r1", "r2"); err != nil {
		t.Fatal(err)
	}
	vm, _ = lab.VM("r1")
	if len(vm.Config.Interfaces) != 3 {
		t.Fatalf("interfaces after restore = %d, want 3", len(vm.Config.Interfaces))
	}
}

// labSnapshot captures everything the acceptance criterion compares: OSPF
// neighbor tables, selected BGP routes, and per-VM interface lists.
type labSnapshot struct {
	neighbors map[string][]routing.OSPFNeighbor
	bgp       map[string][]routing.BGPRoute
	ifaces    map[string][]routing.InterfaceConfig
}

func snapshotLab(lab *Lab) labSnapshot {
	s := labSnapshot{
		neighbors: map[string][]routing.OSPFNeighbor{},
		bgp:       map[string][]routing.BGPRoute{},
		ifaces:    map[string][]routing.InterfaceConfig{},
	}
	for _, name := range lab.VMNames() {
		s.neighbors[name] = lab.OSPFNeighbors(name)
		s.bgp[name] = lab.BGPRoutes(name)
		vm, _ := lab.VM(name)
		s.ifaces[name] = append([]routing.InterfaceConfig(nil), vm.Config.Interfaces...)
	}
	return s
}

// The acceptance criterion: fail -> restore returns the lab to a state
// identical to the pre-incident one — OSPF neighbor tables, BGP routes and
// interface lists all reflect.DeepEqual.
func TestRestoreLinkRoundTrip(t *testing.T) {
	lab, _ := incidentLab(t)
	before := snapshotLab(lab)
	if err := lab.FailLink("r1", "r3"); err != nil {
		t.Fatal(err)
	}
	if len(lab.OSPFNeighbors("r1")) == len(before.neighbors["r1"]) {
		t.Fatal("failure did not change adjacency state")
	}
	if err := lab.RestoreLink("r1", "r3"); err != nil {
		t.Fatal(err)
	}
	after := snapshotLab(lab)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("restored lab differs from pre-incident state:\nbefore: %+v\nafter:  %+v", before, after)
	}
	events := strings.Join(lab.Events(), "\n")
	if !strings.Contains(events, "INCIDENT #1: link r1 -- r3") || !strings.Contains(events, "restored") {
		t.Errorf("restore not logged:\n%s", events)
	}
}

func TestRestoreNodeRoundTrip(t *testing.T) {
	lab, _ := incidentLab(t)
	before := snapshotLab(lab)
	if err := lab.FailNode("r3"); err != nil {
		t.Fatal(err)
	}
	if err := lab.RestoreNode("r3"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, snapshotLab(lab)) {
		t.Error("restored lab differs from pre-incident state")
	}
	// RestoreNode also repairs this node's side of a failed link...
	if err := lab.FailLink("r3", "r4"); err != nil {
		t.Fatal(err)
	}
	if err := lab.RestoreNode("r3"); err != nil {
		t.Fatal(err)
	}
	// ...but r4's side stays down until restored, so the adjacency is
	// still absent.
	for _, nbr := range lab.OSPFNeighbors("r3") {
		if nbr.Hostname == "r4" {
			t.Error("one-sided restore resurrected the adjacency")
		}
	}
	if err := lab.RestoreNode("r4"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, snapshotLab(lab)) {
		t.Error("lab differs after both ends restored")
	}
}

func TestPartitionAndRestore(t *testing.T) {
	lab, alloc := incidentLab(t)
	before := snapshotLab(lab)
	// Isolate AS2 (r5): both inter-AS links are cut from r5's side.
	if err := lab.Partition([]string{"r5"}); err != nil {
		t.Fatal(err)
	}
	lb5 := alloc.Overlay.Node("r5").Get(ipalloc.AttrLoopback).(netip.Addr)
	out, err := lab.Exec("r1", "ping -c 1 "+lb5.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100% packet loss") {
		t.Errorf("partitioned node still reachable:\n%s", out)
	}
	events := strings.Join(lab.Events(), "\n")
	if !strings.Contains(events, "partition isolated [r5] (2 boundary subnets cut)") {
		t.Errorf("partition not logged:\n%s", events)
	}
	if err := lab.RestoreNode("r5"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, snapshotLab(lab)) {
		t.Error("lab differs after partition restore")
	}
	// Errors: empty group, unknown machine, group with no outside links.
	if err := lab.Partition(nil); err == nil {
		t.Error("empty partition group accepted")
	}
	if err := lab.Partition([]string{"ghost"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := lab.Partition([]string{"r1", "r2", "r3", "r4", "r5"}); err == nil {
		t.Error("whole-lab partition accepted")
	}
}

func TestRestoreErrors(t *testing.T) {
	lab, _ := incidentLab(t)
	if err := lab.RestoreLink("r1", "r3"); err == nil {
		t.Error("restoring an intact link accepted")
	}
	if err := lab.RestoreNode("r3"); err == nil {
		t.Error("restoring an intact node accepted")
	}
	if err := lab.RestoreLink("r1", "ghost"); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := lab.RestoreNode("ghost"); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := lab.RestoreLink("r1", "r5"); err == nil {
		t.Error("never-linked pair accepted")
	}
	unstarted, _ := buildLab(t, "netkit", "quagga")
	if err := unstarted.RestoreLink("r1", "r3"); err == nil {
		t.Error("restore before start accepted")
	}
	cbgp, _ := startedLab(t, "cbgp", "cbgp")
	names := cbgp.VMNames()
	if err := cbgp.RestoreLink(names[0], names[1]); err == nil {
		t.Error("cbgp restore accepted")
	}
	if err := cbgp.Partition(names[:1]); err == nil {
		t.Error("cbgp partition accepted")
	}
}

// Incidents and measurement run concurrently: a measurement client may
// probe the lab while an incident re-converges it. Run with -race (the CI
// gate does) this asserts the locking contract.
func TestIncidentMeasureRace(t *testing.T) {
	lab, alloc := incidentLab(t)
	lb4 := alloc.Overlay.Node("r4").Get(ipalloc.AttrLoopback).(netip.Addr)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 25; i++ {
			if err := lab.FailLink("r1", "r3"); err != nil {
				t.Errorf("fail: %v", err)
				return
			}
			if err := lab.RestoreLink("r1", "r3"); err != nil {
				t.Errorf("restore: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := lab.Exec("r1", "ping -c 1 "+lb4.String()); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
				lab.OSPFNeighbors("r1")
				lab.BGPRoutes("r1")
				lab.BGPResult()
				lab.Events()
				lab.Links()
			}
		}()
	}
	wg.Wait()
}

func TestIncidentUnsupportedOnCBGP(t *testing.T) {
	lab, _ := startedLab(t, "cbgp", "cbgp")
	names := lab.VMNames()
	if err := lab.FailLink(names[0], names[1]); err == nil {
		t.Error("cbgp incident accepted")
	}
	if err := lab.FailNode(names[0]); err == nil {
		t.Error("cbgp node failure accepted")
	}
}
