package emul

import (
	"errors"
	"strings"
	"testing"
)

// Parser recovery contract: malformed input yields located diagnostics —
// not a bail-out — and the valid stanzas around the damage still parse.

func TestJunosRecovery(t *testing.T) {
	for _, c := range junosCases {
		t.Run(c.name, func(t *testing.T) {
			dc, diags := parseJunosConfig("r1", c.conf)
			errs := diags.Errors()
			if len(errs) != c.wantErrs {
				t.Fatalf("want %d error diagnostics, got %d:\n%s", c.wantErrs, len(errs), diags)
			}
			found := false
			for _, d := range errs {
				if d.Device != "r1" || d.File != "r1.conf" {
					t.Errorf("diagnostic not attributed to device/file: %s", d)
				}
				if strings.Contains(d.Message, c.wantSubstr) {
					found = true
				}
			}
			if !found {
				t.Errorf("no diagnostic mentions %q:\n%s", c.wantSubstr, diags)
			}
			if got := len(dc.Interfaces); got != c.wantIfaces {
				t.Errorf("interfaces recovered = %d, want %d", got, c.wantIfaces)
			}
			gotNbrs := 0
			if dc.BGP != nil {
				gotNbrs = len(dc.BGP.Neighbors)
			}
			if gotNbrs != c.wantNbrs {
				t.Errorf("bgp neighbors recovered = %d, want %d", gotNbrs, c.wantNbrs)
			}
		})
	}
}

var junosCases = []struct {
	name       string
	conf       string
	wantErrs   int
	wantSubstr string
	wantIfaces int
	wantNbrs   int
}{
	{
		name: "unbalanced brace then valid stanza",
		conf: "}\n" + // stray close on line 1
			"interfaces {\n em0 {\n unit 0 {\n family inet {\n address 10.0.0.1/30;\n}\n}\n}\n}\n",
		wantErrs:   1,
		wantSubstr: "unbalanced '}'",
		wantIfaces: 1,
	},
	{
		name: "truncated stanza at EOF",
		conf: "interfaces {\n em0 {\n unit 0 {\n family inet {\n address 10.0.0.1/30;\n}\n}\n}\n}\n" +
			"protocols {\n ospf {\n", // 2 unclosed blocks
		wantErrs:   1,
		wantSubstr: "unclosed block",
		wantIfaces: 1,
	},
	{
		name: "duplicate neighbor, later neighbor survives",
		conf: "interfaces {\n em0 {\n unit 0 {\n family inet {\n address 10.0.0.1/30;\n}\n}\n}\n}\n" +
			"routing-options {\n autonomous-system 1;\n router-id 10.0.0.1;\n}\n" +
			"protocols {\n bgp {\n group ext {\n type external;\n peer-as 2;\n" +
			" neighbor 10.0.0.2;\n neighbor 10.0.0.2;\n neighbor 10.0.0.6;\n}\n}\n}\n",
		wantErrs:   1,
		wantSubstr: "duplicate neighbor 10.0.0.2",
		wantIfaces: 1,
		wantNbrs:   2, // first 10.0.0.2 plus 10.0.0.6; the duplicate is dropped
	},
	{
		name: "unterminated statement inside valid config",
		conf: "interfaces {\n em0 {\n unit 0 {\n family inet {\n address 10.0.0.1/30;\n" +
			" mtu 1500\n" + // no ';'
			"}\n}\n}\n}\n",
		wantErrs:   1,
		wantSubstr: "unterminated statement",
		wantIfaces: 1,
	},
}

func TestCBGPRecovery(t *testing.T) {
	cases := []struct {
		name        string
		script      string
		wantErrs    int
		wantSubstr  string
		wantDevices int
	}{
		{
			name: "bad node line, later nodes survive",
			script: "net add node 10.0.0.1\n" +
				"net add node junk\n" +
				"net add node 10.0.0.2\n",
			wantErrs:    1,
			wantSubstr:  "bad node address",
			wantDevices: 2,
		},
		{
			name: "duplicate peer rejected, next peer survives",
			script: "net add node 10.0.0.1\n" +
				"net add node 10.0.0.2\n" +
				"net add node 10.0.0.3\n" +
				"net add link 10.0.0.1 10.0.0.2 1\n" +
				"bgp add router 1 10.0.0.1\n" +
				"bgp router 10.0.0.1\n" +
				"  add peer 2 10.0.0.2\n" +
				"  add peer 2 10.0.0.2\n" + // duplicate
				"  add peer 3 10.0.0.3\n" +
				"exit\n",
			wantErrs:    1,
			wantSubstr:  "duplicate peer 10.0.0.2",
			wantDevices: 3,
		},
		{
			name: "three independent errors in one pass",
			script: "net add node 10.0.0.1\n" +
				"net add node junk\n" + // error 1
				"net add link 10.0.0.1 nowhere\n" + // error 2
				"bgp add router x 10.0.0.1\n" + // error 3
				"net add node 10.0.0.2\n",
			wantErrs:    3,
			wantSubstr:  "bad ASN",
			wantDevices: 2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			parsed, diags := parseCBGPScript(c.script)
			errs := diags.Errors()
			if len(errs) != c.wantErrs {
				t.Fatalf("want %d error diagnostics, got %d:\n%s", c.wantErrs, len(errs), diags)
			}
			found := false
			for _, d := range errs {
				if d.File != "lab.cli" || d.Line == 0 {
					t.Errorf("diagnostic not located: %s", d)
				}
				if strings.Contains(d.Message, c.wantSubstr) {
					found = true
				}
			}
			if !found {
				t.Errorf("no diagnostic mentions %q:\n%s", c.wantSubstr, diags)
			}
			if got := len(parsed.devices); got != c.wantDevices {
				t.Errorf("devices recovered = %d, want %d", got, c.wantDevices)
			}
		})
	}
}

// corruptBGPD replaces one netkit machine's bgpd.conf with a config
// carrying three independent errors.
func corruptBGPD(t *testing.T, lab *Lab, name string) {
	t.Helper()
	vm, ok := lab.VM(name)
	if !ok {
		t.Fatalf("no machine %s", name)
	}
	vm.Files["etc/quagga/bgpd.conf"] = "router bgp 1\n" +
		"  bgp router-id junk\n" +
		"  network nonsense\n" +
		"  neighbor bad-addr remote-as 2\n"
}

func TestStrictBootFailsWithAllDiagnostics(t *testing.T) {
	lab, _ := buildLab(t, "netkit", "quagga")
	corruptBGPD(t, lab, "r3")
	err := lab.Start(0)
	if err == nil {
		t.Fatal("strict boot accepted a corrupt config")
	}
	var derr *DiagnosticError
	if !errors.As(err, &derr) {
		t.Fatalf("strict boot error is %T, want *DiagnosticError", err)
	}
	r3 := derr.Diags.Errors().ForDevice("r3")
	if len(r3) != 3 {
		t.Fatalf("want 3 error diagnostics for r3, got %d:\n%s", len(r3), derr.Diags)
	}
	for _, d := range r3 {
		if d.File == "" || d.Line == 0 {
			t.Errorf("diagnostic not located: %s", d)
		}
	}
}

func TestLenientBootQuarantines(t *testing.T) {
	lab, alloc := buildLab(t, "netkit", "quagga")
	corruptBGPD(t, lab, "r3")
	err := lab.Boot(BootOptions{Lenient: true})
	if !errors.Is(err, ErrPartialBoot) {
		t.Fatalf("lenient boot error = %v, want ErrPartialBoot", err)
	}
	if q := lab.Quarantined(); len(q) != 1 || q[0] != "r3" {
		t.Fatalf("quarantined = %v, want [r3]", q)
	}
	// The quarantined machine is not usable...
	if _, execErr := lab.Exec("r3", "show ip route"); execErr == nil {
		t.Error("Exec on quarantined machine succeeded")
	}
	if failErr := lab.FailNode("r3"); failErr == nil {
		t.Error("incident injection on quarantined machine succeeded")
	}
	// ...but the survivors are: r1 pings r2's loopback.
	var dst string
	for _, e := range alloc.Table.Entries() {
		if e.Loopback && string(e.Node) == "r2" {
			dst = e.Addr.String()
		}
	}
	if dst == "" {
		t.Fatal("no loopback for r2 in allocation table")
	}
	out, execErr := lab.Exec("r1", "ping -c 1 "+dst)
	if execErr != nil {
		t.Fatalf("survivor Exec: %v", execErr)
	}
	if !strings.Contains(out, "1 received") {
		t.Errorf("survivor r1 cannot reach r2:\n%s", out)
	}
	// The diagnostics surface in report order and name the device.
	if ds := lab.Diagnostics().Errors().ForDevice("r3"); len(ds) != 3 {
		t.Errorf("lab diagnostics for r3 = %d, want 3:\n%s", len(ds), lab.Diagnostics())
	}
}

func TestLenientBootAllBadFails(t *testing.T) {
	lab, _ := buildLab(t, "netkit", "quagga")
	for _, name := range lab.VMNames() {
		corruptBGPD(t, lab, name)
	}
	err := lab.Boot(BootOptions{Lenient: true})
	if err == nil || errors.Is(err, ErrPartialBoot) {
		t.Fatalf("all-quarantined boot must fail outright, got %v", err)
	}
	var derr *DiagnosticError
	if !errors.As(err, &derr) {
		t.Fatalf("error is %T, want *DiagnosticError", err)
	}
}
