package emul

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// cbgpLab is the parsed form of a C-BGP script: router configs (keyed by
// loopback, which is the node identity in C-BGP) plus the weighted link
// graph used as the IGP.
type cbgpLab struct {
	devices []*routing.DeviceConfig
	igp     *cbgpIGP
}

// parseCBGPScript parses the lab.cli script the renderer produces.
// Malformed lines are recorded as diagnostics — attributed to the current
// router block's device when inside one — and the parse continues, so one
// pass surfaces every problem in the script.
func parseCBGPScript(script string) (*cbgpLab, Diagnostics) {
	lab := &cbgpLab{igp: newCBGPIGP()}
	byAddr := map[netip.Addr]*routing.DeviceConfig{}
	var current *routing.DeviceConfig
	var currentPeer netip.Addr
	sink := &diagSink{file: "lab.cli"}

	for lineNo, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(msg string) {
			dev := ""
			if current != nil {
				dev = current.Hostname
			}
			sink.diags = append(sink.diags, Diagnostic{
				Severity: SevError, Device: dev, File: sink.file, Line: lineNo + 1,
				Message: fmt.Sprintf("%s in %q", msg, line),
			})
		}
		switch {
		case fields[0] == "net" && len(fields) >= 4 && fields[1] == "add" && fields[2] == "node":
			addr, err := netip.ParseAddr(fields[3])
			if err != nil {
				fail("bad node address " + strconv.Quote(fields[3]))
				continue
			}
			dc := &routing.DeviceConfig{
				Hostname: addr.String(),
				Loopback: addr,
				Interfaces: []routing.InterfaceConfig{
					{Name: "lo", Addr: addr, Prefix: netip.PrefixFrom(addr, 32), Cost: 1},
				},
			}
			byAddr[addr] = dc
			lab.devices = append(lab.devices, dc)
			lab.igp.addNode(addr)
		case fields[0] == "net" && len(fields) >= 5 && fields[1] == "add" && fields[2] == "link":
			a, err1 := netip.ParseAddr(fields[3])
			b, err2 := netip.ParseAddr(fields[4])
			if err1 != nil || err2 != nil {
				fail("bad link endpoints")
				continue
			}
			w := 1
			if len(fields) >= 6 {
				w, err1 = strconv.Atoi(fields[5])
				if err1 != nil {
					fail("bad link weight " + strconv.Quote(fields[5]))
					continue
				}
			}
			lab.igp.addLink(a, b, w)
		case fields[0] == "bgp" && len(fields) >= 5 && fields[1] == "add" && fields[2] == "router":
			asn, err := strconv.Atoi(fields[3])
			if err != nil {
				fail("bad ASN " + strconv.Quote(fields[3]))
				continue
			}
			addr, err := netip.ParseAddr(fields[4])
			if err != nil {
				fail("bad router address " + strconv.Quote(fields[4]))
				continue
			}
			dc, ok := byAddr[addr]
			if !ok {
				fail("bgp router for undeclared node")
				continue
			}
			dc.BGP = &routing.BGPConfig{ASN: asn, RouterID: addr}
		case fields[0] == "bgp" && len(fields) >= 3 && fields[1] == "router":
			addr, err := netip.ParseAddr(fields[2])
			if err != nil {
				fail("bad router address " + strconv.Quote(fields[2]))
				continue
			}
			current = byAddr[addr]
			if current == nil || current.BGP == nil {
				current = nil
				fail("router block for undeclared bgp router")
				continue
			}
		case fields[0] == "add" && len(fields) >= 3 && fields[1] == "network" && current != nil:
			p, err := netip.ParsePrefix(fields[2])
			if err != nil {
				fail("bad network " + strconv.Quote(fields[2]))
				continue
			}
			current.BGP.Networks = append(current.BGP.Networks, p.Masked())
		case fields[0] == "add" && len(fields) >= 4 && fields[1] == "peer" && current != nil:
			asn, err := strconv.Atoi(fields[2])
			if err != nil {
				fail("bad peer ASN " + strconv.Quote(fields[2]))
				continue
			}
			addr, err := netip.ParseAddr(fields[3])
			if err != nil {
				fail("bad peer address " + strconv.Quote(fields[3]))
				continue
			}
			if findNeighbor(current.BGP, addr) != nil {
				fail("duplicate peer " + addr.String())
				continue
			}
			current.BGP.Neighbors = append(current.BGP.Neighbors, routing.BGPNeighbor{Addr: addr, RemoteASN: asn})
			currentPeer = addr
		case fields[0] == "peer" && len(fields) >= 3 && current != nil:
			addr, err := netip.ParseAddr(fields[1])
			if err != nil {
				fail("bad peer address " + strconv.Quote(fields[1]))
				continue
			}
			currentPeer = addr
			nbr := findNeighbor(current.BGP, currentPeer)
			if nbr == nil {
				fail("statement for undeclared peer")
				continue
			}
			switch fields[2] {
			case "rr-client":
				nbr.RRClient = true
			case "up":
				// Session activation: implicit in the engine.
			case "filter":
				// filter in|out add-rule action "local-pref N" / "metric N"
				rest := strings.Join(fields[3:], " ")
				isIn := strings.HasPrefix(rest, "in ")
				if i := strings.Index(rest, `action "`); i >= 0 {
					action := rest[i+len(`action "`):]
					action = strings.TrimSuffix(action, `"`)
					av := strings.Fields(action)
					if len(av) == 2 {
						n, err := strconv.Atoi(av[1])
						if err != nil {
							fail("bad filter action value " + strconv.Quote(av[1]))
							continue
						}
						switch av[0] {
						case "local-pref":
							if isIn {
								nbr.LocalPrefIn = n
							}
						case "metric":
							if !isIn {
								nbr.MEDOut = n
							}
						}
					}
				}
			}
		case fields[0] == "exit":
			current = nil
		case fields[0] == "sim" || fields[0] == "net":
			// sim run / net node domain declarations: no engine state.
		}
	}
	// C-BGP has no interface subnets; sessions are loopback-to-loopback and
	// "connectivity" is the link graph. Validate basic consistency.
	for _, dc := range lab.devices {
		if err := dc.Validate(); err != nil {
			sink.diags = append(sink.diags, Diagnostic{
				Severity: SevError, Device: dc.Hostname, File: sink.file, Message: err.Error(),
			})
		}
	}
	return lab, sink.diags
}

func findNeighbor(bgp *routing.BGPConfig, addr netip.Addr) *routing.BGPNeighbor {
	for i := range bgp.Neighbors {
		if bgp.Neighbors[i].Addr == addr {
			return &bgp.Neighbors[i]
		}
	}
	return nil
}

// cbgpIGP computes shortest-path costs over the script's weighted link
// graph (the `net add link a b w` statements).
type cbgpIGP struct {
	nodes map[netip.Addr]bool
	adj   map[netip.Addr]map[netip.Addr]int
}

func newCBGPIGP() *cbgpIGP {
	return &cbgpIGP{nodes: map[netip.Addr]bool{}, adj: map[netip.Addr]map[netip.Addr]int{}}
}

func (g *cbgpIGP) addNode(a netip.Addr) { g.nodes[a] = true }

func (g *cbgpIGP) addLink(a, b netip.Addr, w int) {
	if g.adj[a] == nil {
		g.adj[a] = map[netip.Addr]int{}
	}
	if g.adj[b] == nil {
		g.adj[b] = map[netip.Addr]int{}
	}
	g.adj[a][b] = w
	g.adj[b][a] = w
}

// IGPCost implements routing.IGPCoster; host is the node's loopback string.
func (g *cbgpIGP) IGPCost(host string, addr netip.Addr) int {
	src, err := netip.ParseAddr(host)
	if err != nil {
		return -1
	}
	if src == addr {
		return 0
	}
	// Dijkstra with deterministic tie-break by address.
	dist := map[netip.Addr]int{src: 0}
	done := map[netip.Addr]bool{}
	for {
		var cur netip.Addr
		curDist := -1
		var keys []netip.Addr
		for a := range dist {
			keys = append(keys, a)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		for _, a := range keys {
			if done[a] {
				continue
			}
			if curDist < 0 || dist[a] < curDist {
				cur, curDist = a, dist[a]
			}
		}
		if curDist < 0 {
			break
		}
		if cur == addr {
			return curDist
		}
		done[cur] = true
		for nb, w := range g.adj[cur] {
			nd := curDist + w
			if old, ok := dist[nb]; !ok || nd < old {
				dist[nb] = nd
			}
		}
	}
	return -1
}
