package emul

import (
	"strings"
	"testing"
)

// TestFailNodesBatchConvergesOnce pins the batch primitive: a whole host's
// worth of machines goes down under a single re-convergence, and RebootVMs
// brings them all back byte-identical to their boot-time configs.
func TestFailNodesBatchConvergesOnce(t *testing.T) {
	lab, _ := incidentLab(t)
	before := lab.LastIncidentID()
	if err := lab.FailNodes([]string{"r2", "r1"}); err != nil {
		t.Fatal(err)
	}
	// One incident id for the whole batch (one converge).
	if got := lab.LastIncidentID(); got != before+1 {
		t.Fatalf("incident id advanced by %d, want 1", got-before)
	}
	for _, name := range []string{"r1", "r2"} {
		vm, _ := lab.VM(name)
		for _, ic := range vm.Config.Interfaces {
			if ic.Name != "lo" {
				t.Fatalf("%s still has data-plane interface %s", name, ic.Name)
			}
		}
	}
	// Logs are in sorted name order.
	var downLines []string
	for _, ev := range lab.Events() {
		if strings.Contains(ev, "down (") {
			downLines = append(downLines, ev)
		}
	}
	if len(downLines) != 2 || !strings.Contains(downLines[0], "r1") || !strings.Contains(downLines[1], "r2") {
		t.Fatalf("down lines not sorted: %v", downLines)
	}

	// Re-boot the batch: one more converge, configs restored.
	if err := lab.RebootVMs([]string{"r2", "r1"}); err != nil {
		t.Fatal(err)
	}
	if got := lab.LastIncidentID(); got != before+2 {
		t.Fatalf("incident id advanced by %d after reboot, want 2", got-before)
	}
	for _, name := range []string{"r1", "r2"} {
		vm, _ := lab.VM(name)
		data := 0
		for _, ic := range vm.Config.Interfaces {
			if ic.Name != "lo" {
				data++
			}
		}
		if data == 0 {
			t.Fatalf("%s has no data-plane interfaces after re-boot", name)
		}
	}
}

func TestFailNodesBatchErrors(t *testing.T) {
	lab, _ := incidentLab(t)
	if err := lab.FailNodes(nil); err == nil {
		t.Fatal("empty batch should error")
	}
	if err := lab.FailNodes([]string{"ghost"}); err == nil {
		t.Fatal("unknown machine should error")
	}
	if err := lab.FailNodes([]string{"r1"}); err != nil {
		t.Fatal(err)
	}
	// Failing an already-down machine again (alone) is an error; mixed
	// batches skip the already-down ones.
	if err := lab.FailNodes([]string{"r1"}); err == nil {
		t.Fatal("all-down batch should error")
	}
	if err := lab.FailNodes([]string{"r1", "r2"}); err != nil {
		t.Fatalf("mixed batch should skip the downed machine: %v", err)
	}
	if err := lab.RebootVMs(nil); err == nil {
		t.Fatal("empty reboot batch should error")
	}
	if err := lab.RebootVMs([]string{"ghost"}); err == nil {
		t.Fatal("unknown machine in reboot should error")
	}
	// Re-boot is idempotent: intact machines re-install as a no-op.
	if err := lab.RebootVMs([]string{"r1", "r2", "r3"}); err != nil {
		t.Fatal(err)
	}
}
