package emul

import (
	"net/netip"
	"strings"
	"testing"

	"autonetkit/internal/routing"
)

// Parser error-path coverage: every malformed statement class a rendered
// (or hand-edited) config could contain is recorded as a located
// error-level diagnostic — and the parse carries on past it.

// subDiags feeds a per-daemon Quagga sub-parser directly and returns the
// diagnostics it recorded.
func subDiags(parse func(*routing.DeviceConfig, string, *diagSink), dc *routing.DeviceConfig, conf string) Diagnostics {
	sink := &diagSink{device: dc.Hostname, file: "test.conf"}
	parse(dc, conf, sink)
	return sink.diags
}

func TestParseStartupErrors(t *testing.T) {
	base := map[string]string{
		"etc/quagga/daemons": "zebra=yes\n",
	}
	cases := []struct{ name, startup string }{
		{"bad address", "/sbin/ifconfig eth0 not-an-ip netmask 255.255.255.0 up\n"},
		{"bad netmask", "/sbin/ifconfig eth0 10.0.0.1 netmask 255.0.255.0 up\n"},
	}
	for _, c := range cases {
		files := map[string]string{}
		for k, v := range base {
			files[k] = v
		}
		files["x.startup"] = c.startup
		if _, diags := parseQuaggaVM("x", files); !diags.HasErrors() {
			t.Errorf("%s accepted", c.name)
		}
	}
	// Missing startup entirely.
	if _, diags := parseQuaggaVM("x", base); !diags.HasErrors() {
		t.Error("missing startup accepted")
	}
}

func TestParseQuaggaDaemonFileGates(t *testing.T) {
	files := map[string]string{
		"x.startup":          "/sbin/ifconfig eth0 10.0.0.1 netmask 255.255.255.252 up\n",
		"etc/quagga/daemons": "zebra=yes\nospfd=yes\n",
		// ospfd.conf missing although enabled.
	}
	if _, diags := parseQuaggaVM("x", files); !diags.HasErrors() {
		t.Error("enabled daemon without config accepted")
	}
	files["etc/quagga/daemons"] = "zebra=yes\nbgpd=yes\n"
	if _, diags := parseQuaggaVM("x", files); !diags.HasErrors() {
		t.Error("enabled bgpd without config accepted")
	}
	files["etc/quagga/daemons"] = "zebra=yes\nisisd=yes\n"
	if _, diags := parseQuaggaVM("x", files); !diags.HasErrors() {
		t.Error("enabled isisd without config accepted")
	}
}

func TestParseQuaggaOspfdErrors(t *testing.T) {
	cases := []struct{ name, conf string }{
		{"bad cost", "interface eth0\n  ip ospf cost abc\n"},
		{"bad network", "router ospf\n  network junk area 0\n"},
		{"bad area", "router ospf\n  network 10.0.0.0/8 area x\n"},
	}
	for _, c := range cases {
		dc := mkBase(t)
		if diags := subDiags(parseQuaggaOspfd, dc, c.conf); !diags.HasErrors() {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestParseQuaggaBgpdErrors(t *testing.T) {
	cases := []struct{ name, conf string }{
		{"bad asn", "router bgp abc\n"},
		{"bad router-id", "router bgp 1\n  bgp router-id junk\n"},
		{"bad network", "router bgp 1\n  network junk\n"},
		{"bad neighbor addr", "router bgp 1\n  neighbor junk remote-as 2\n"},
		{"bad remote-as", "router bgp 1\n  neighbor 10.0.0.2 remote-as x\n"},
		{"no router block", "neighbor 10.0.0.2 remote-as 2\n"},
		{"undefined route-map", "router bgp 1\n  neighbor 10.0.0.2 remote-as 2\n  neighbor 10.0.0.2 route-map nope out\n"},
		{"bad set value", "router bgp 1\nroute-map m permit 10\n  set metric x\n"},
	}
	for _, c := range cases {
		dc := mkBase(t)
		if diags := subDiags(parseQuaggaBgpd, dc, c.conf); !diags.HasErrors() {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestParseQuaggaIsisdErrors(t *testing.T) {
	dc := mkBase(t)
	if diags := subDiags(parseQuaggaIsisd, dc, "router isis ank\n"); !diags.HasErrors() {
		t.Error("missing NET accepted")
	}
}

// Every diagnostic a parser emits must carry the device, the file, and —
// for statement-level problems — a 1-based line number.
func TestDiagnosticsAreLocated(t *testing.T) {
	files := map[string]string{
		"x.startup":            "/sbin/ifconfig eth0 not-an-ip netmask 255.255.255.0 up\n",
		"etc/quagga/daemons":   "zebra=yes\nbgpd=yes\n",
		"etc/quagga/bgpd.conf": "router bgp 1\n  neighbor junk remote-as 2\n",
	}
	_, diags := parseQuaggaVM("x", files)
	if !diags.HasErrors() {
		t.Fatal("corrupt config accepted")
	}
	for _, d := range diags.Errors() {
		if d.Device != "x" {
			t.Errorf("diagnostic %q has no device", d)
		}
		if d.File == "" {
			t.Errorf("diagnostic %q has no file", d)
		}
	}
	// The startup error is on line 1 of x.startup.
	found := false
	for _, d := range diags {
		if d.File == "x.startup" && d.Line == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no line-1 startup diagnostic in:\n%s", diags)
	}
}

// A config with three independent errors yields three diagnostics in a
// single parse pass — the recovery contract.
func TestQuaggaThreeErrorsOnePass(t *testing.T) {
	files := map[string]string{
		"x.startup":          "/sbin/ifconfig eth0 10.0.0.1 netmask 255.255.255.252 up\n",
		"etc/quagga/daemons": "zebra=yes\nbgpd=yes\n",
		"etc/quagga/bgpd.conf": "router bgp 1\n" +
			"  bgp router-id junk\n" + // error 1
			"  network nonsense\n" + // error 2
			"  neighbor bad-addr remote-as 2\n" + // error 3
			"  neighbor 10.0.0.2 remote-as 2\n", // valid: still parsed
	}
	dc, diags := parseQuaggaVM("x", files)
	if got := len(diags.Errors()); got != 3 {
		t.Fatalf("want 3 error diagnostics, got %d:\n%s", got, diags)
	}
	// Recovery: the valid neighbor after the broken lines is present.
	if dc == nil || dc.BGP == nil || len(dc.BGP.Neighbors) != 1 {
		t.Errorf("valid neighbor after errors not recovered: %+v", dc)
	}
}

// mkBase returns a minimal device config with one interface, for feeding
// the per-daemon parsers directly.
func mkBase(t *testing.T) *routing.DeviceConfig {
	t.Helper()
	return &routing.DeviceConfig{
		Hostname: "x",
		Interfaces: []routing.InterfaceConfig{
			{Name: "eth0", Addr: mustParse("10.0.0.1"), Prefix: netip.MustParsePrefix("10.0.0.0/30"), Cost: 1},
		},
	}
}

func mustParse(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestParseIOSErrors(t *testing.T) {
	cases := []struct{ name, conf string }{
		{"bad address", "interface f0/0\n ip address junk 255.255.255.0\n"},
		{"bad mask", "interface f0/0\n ip address 10.0.0.1 255.0.255.0\n"},
		{"bad cost", "interface f0/0\n ip address 10.0.0.1 255.255.255.0\n ip ospf cost x\n"},
		{"bad wildcard", "router ospf 1\n network 10.0.0.0 3.0.0.3 area 0\n"},
		{"bad area", "router ospf 1\n network 10.0.0.0 0.0.0.3 area z\n"},
		{"router bgp bare", "router bgp\n"},
		{"bad bgp asn", "router bgp x\n"},
		{"bad bgp network", "router bgp 1\n network junk mask 255.0.0.0\n"},
		{"bad neighbor", "router bgp 1\n neighbor junk remote-as 2\n"},
		{"undefined route-map", "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 route-map nope out\n"},
	}
	for _, c := range cases {
		if _, diags := parseIOSConfig("x", c.conf); !diags.HasErrors() {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestParseJunosErrors(t *testing.T) {
	cases := []struct{ name, conf string }{
		{"unbalanced close", "}\n"},
		{"unterminated stmt", "system {\nhost-name x\n}\n"},
		{"unclosed block", "system {\n"},
		{"bad iface addr", "interfaces {\n em0 {\n unit 0 {\n family inet {\n address junk;\n}\n}\n}\n}\n"},
		{"bgp without asn", "protocols {\n bgp {\n group x {\n type external;\n neighbor 10.0.0.1;\n}\n}\n}\n"},
		{"bad area", "protocols {\n ospf {\n area x {\n interface 10.0.0.0/30 {\n metric 1;\n}\n}\n}\n}\n"},
	}
	for _, c := range cases {
		if _, diags := parseJunosConfig("x", c.conf); !diags.HasErrors() {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestParseCBGPErrors(t *testing.T) {
	cases := []struct{ name, script string }{
		{"bad node", "net add node junk\n"},
		{"bad link", "net add link junk 10.0.0.1\n"},
		{"bad link weight", "net add link 10.0.0.1 10.0.0.2 x\n"},
		{"bgp undeclared node", "bgp add router 1 10.0.0.9\n"},
		{"router block undeclared", "bgp router 10.0.0.9\n"},
		{"bad peer asn", "net add node 10.0.0.1\nbgp add router 1 10.0.0.1\nbgp router 10.0.0.1\n  add peer x 10.0.0.2\n"},
		{"peer before declare", "net add node 10.0.0.1\nbgp add router 1 10.0.0.1\nbgp router 10.0.0.1\n  peer 10.0.0.2 up\n"},
		{"bad network", "net add node 10.0.0.1\nbgp add router 1 10.0.0.1\nbgp router 10.0.0.1\n  add network junk\n"},
	}
	for _, c := range cases {
		if _, diags := parseCBGPScript(c.script); !diags.HasErrors() {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestCBGPIGPUnknownHost(t *testing.T) {
	g := newCBGPIGP()
	if g.IGPCost("not-an-ip", mustParse("10.0.0.1")) >= 0 {
		t.Error("bad host name should be unreachable")
	}
}

func TestLabAccessorsBeforeStart(t *testing.T) {
	lab := &Lab{}
	if lab.BGPRoutes("x") != nil {
		t.Error("BGPRoutes on unstarted lab")
	}
	if lab.OSPFNeighbors("x") != nil {
		t.Error("OSPFNeighbors on unstarted lab")
	}
	if lab.ISISNeighbors("x") != nil {
		t.Error("ISISNeighbors on unstarted lab")
	}
	if lab.Network() != nil {
		t.Error("Network on unstarted lab")
	}
}

func TestQuaggaConfigHeadersTolerated(t *testing.T) {
	// hostname/password headers in protocol configs must parse cleanly.
	dc := mkBase(t)
	conf := "hostname x\npassword 1234\ninterface eth0\n  ip ospf cost 5\nrouter ospf\n  network 10.0.0.0/30 area 0\n"
	if diags := subDiags(parseQuaggaOspfd, dc, conf); len(diags) != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", diags)
	}
	if dc.Interfaces[0].Cost != 5 {
		t.Error("cost not applied")
	}
	if !strings.Contains(dc.OSPF.Networks[0].Prefix.String(), "10.0.0.0/30") {
		t.Error("network not parsed")
	}
}
