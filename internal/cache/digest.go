// Package cache implements the content-addressed incremental build layer
// for the design→compile→render pipeline. Each device's compile inputs —
// its overlay-graph slice, design-rule outputs, IP allocations and template
// identity — hash into a per-device digest; devices whose digests are
// unchanged on a rebuild skip compilation and template execution, reusing
// their prior Resource-Database entries and rendered configuration files
// from an on-disk store (.ankcache/) fronted by an in-memory LRU.
//
// The package is deliberately generic: it knows how to digest, encode and
// store values, while the pipeline stages (internal/compile,
// internal/render) decide what goes into each digest. Cache failures are
// never build failures — a corrupt or unreadable entry is a miss, and the
// whole .ankcache directory is always safe to delete.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"autonetkit/internal/graph"
)

// Digest is a content address: the SHA-256 of a canonical encoding of some
// build input.
type Digest [sha256.Size]byte

// Hex returns the digest as lowercase hex, the form used for on-disk file
// names and diagnostics.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// String implements fmt.Stringer with a short prefix for logs.
func (d Digest) String() string { return d.Hex()[:12] }

// Hasher accumulates canonically-encoded tokens into a digest. Every token
// is length- and type-framed, so concatenation ambiguity ("ab"+"c" vs
// "a"+"bc") cannot collide, and map-valued inputs are hashed with sorted
// keys so digests never depend on Go map iteration order.
type Hasher struct {
	h hash.Hash
	// buf accumulates framed tokens and is flushed to the hash in large
	// chunks: SHA-256 digests long writes far faster than the thousands of
	// few-byte writes a whole-model signature would otherwise issue.
	buf []byte
	// vbuf and keys are reused across Value/Attrs calls so hashing an
	// attribute-heavy model slice doesn't allocate per token.
	vbuf []byte
	keys []string
}

// flushThreshold bounds the token buffer; crossing it drains to the hash.
const flushThreshold = 4096

func (h *Hasher) flush() {
	if len(h.buf) > 0 {
		h.h.Write(h.buf)
		h.buf = h.buf[:0]
	}
}

func (h *Hasher) write(p []byte) {
	h.buf = append(h.buf, p...)
	if len(h.buf) >= flushThreshold {
		h.flush()
	}
}

// NewHasher returns a hasher seeded with a domain tag. Distinct tags (for
// example "ank/compile/v1" vs "ank/render/v1") partition the digest space,
// and bumping a tag's version invalidates every existing entry for that
// stage.
func NewHasher(tag string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(tag)
	return h
}

func (h *Hasher) frame(kind byte, n int) {
	h.buf = append(h.buf, kind)
	h.buf = appendUvarint(h.buf, uint64(n))
	if len(h.buf) >= flushThreshold {
		h.flush()
	}
}

// Str hashes each string, framed.
func (h *Hasher) Str(ss ...string) {
	for _, s := range ss {
		h.frame('s', len(s))
		h.buf = append(h.buf, s...)
		if len(h.buf) >= flushThreshold {
			h.flush()
		}
	}
}

// Bytes hashes a raw byte slice, framed.
func (h *Hasher) Bytes(b []byte) {
	h.frame('b', len(b))
	h.write(b)
}

// Int hashes each integer.
func (h *Hasher) Int(vs ...int) {
	for _, v := range vs {
		h.frame('i', 8)
		h.writeUint64(uint64(v))
	}
}

// Bool hashes a boolean.
func (h *Hasher) Bool(b bool) {
	if b {
		h.frame('t', 0)
	} else {
		h.frame('f', 0)
	}
}

func (h *Hasher) writeUint64(v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.write(buf[:])
}

// Value hashes an arbitrary attribute value using the lenient canonical
// encoding: the closed set of pipeline types encodes exactly, and anything
// else falls back to a deterministic string form. Use Value for digests
// only; round-trip storage goes through EncodeValue, which rejects unknown
// types instead.
func (h *Hasher) Value(v any) {
	h.vbuf, _ = appendValue(h.vbuf[:0], v, true)
	h.Bytes(h.vbuf)
}

// Attrs hashes an attribute map with sorted keys, so the digest is
// independent of map iteration order.
func (h *Hasher) Attrs(a graph.Attrs) {
	if a == nil {
		h.frame('n', 0)
		return
	}
	keys := h.keys[:0]
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.keys = keys
	h.frame('M', len(keys))
	for _, k := range keys {
		h.Str(k)
		h.Value(a[k])
	}
}

// Float hashes a float64 by bit pattern.
func (h *Hasher) Float(f float64) {
	h.frame('d', 8)
	h.writeUint64(math.Float64bits(f))
}

// Sum finalises and returns the digest. The hasher remains usable; further
// writes extend the same stream.
func (h *Hasher) Sum() Digest {
	h.flush()
	var d Digest
	copy(d[:], h.h.Sum(nil))
	return d
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
