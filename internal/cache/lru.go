package cache

// lru is a byte- and entry-bounded least-recently-used map from digest to
// encoded payload. It is not goroutine-safe; the Store serialises access.
type lru struct {
	maxEntries int
	maxBytes   int64
	bytes      int64
	entries    map[Digest]*lruEntry
	head, tail *lruEntry // head = most recent
	evictions  int64
}

type lruEntry struct {
	key        Digest
	data       []byte
	prev, next *lruEntry
}

func newLRU(maxEntries int, maxBytes int64) *lru {
	return &lru{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[Digest]*lruEntry),
	}
}

func (l *lru) get(key Digest) ([]byte, bool) {
	e, ok := l.entries[key]
	if !ok {
		return nil, false
	}
	l.moveToFront(e)
	return e.data, true
}

func (l *lru) put(key Digest, data []byte) {
	if e, ok := l.entries[key]; ok {
		l.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		l.moveToFront(e)
	} else {
		e := &lruEntry{key: key, data: data}
		l.entries[key] = e
		l.bytes += int64(len(data))
		l.pushFront(e)
	}
	for len(l.entries) > l.maxEntries || l.bytes > l.maxBytes {
		if l.tail == nil || len(l.entries) == 1 {
			break // never evict the entry just inserted
		}
		l.evict(l.tail)
	}
}

func (l *lru) evict(e *lruEntry) {
	l.unlink(e)
	delete(l.entries, e.key)
	l.bytes -= int64(len(e.data))
	l.evictions++
}

func (l *lru) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lru) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lru) moveToFront(e *lruEntry) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}
