package cache

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
)

// The canonical binary codec for attribute values. The pipeline's value
// vocabulary is closed — nidb.Device.Data and graph.Attrs hold nil, bool,
// int, int64, float64, string, netip.Addr, netip.Prefix, []any, []string,
// []netip.Prefix and map[string]any — and the codec round-trips exactly
// those Go types. Exactness matters: compile and the template layer
// type-assert `.(int)` and `.(netip.Prefix)` on values read back from the
// NIDB, so a codec that (like JSON) collapsed int to float64 or netip to
// string would break byte-identity between cached and cold builds.
//
// Maps encode with sorted keys, so the same logical value always produces
// the same bytes regardless of insertion or iteration order — a
// requirement both for content addressing and for the determinism tests.

// Value-kind tags. One byte, followed by a kind-specific payload.
const (
	tagNil      = 'z'
	tagFalse    = 'f'
	tagTrue     = 't'
	tagInt      = 'i' // 8-byte little-endian two's complement
	tagInt64    = 'I'
	tagFloat64  = 'd' // 8-byte IEEE-754 bits
	tagString   = 's' // uvarint length + bytes
	tagAddr     = 'a' // uvarint length + netip.Addr binary form
	tagPrefix   = 'p' // uvarint length + netip.Prefix binary form
	tagList     = 'L' // uvarint count + values
	tagStrings  = 'S' // uvarint count + string payloads
	tagPrefixes = 'P' // uvarint count + prefix payloads
	tagMap      = 'M' // uvarint count + sorted (string key, value) pairs
	tagOpaque   = 'x' // uvarint length + "%T|%v" fallback (lenient mode only)

	// Typed nils. A nil []any and an empty []any marshal differently
	// downstream (JSON null vs []), so nil-ness must survive the round
	// trip for cached and cold builds to stay byte-identical.
	tagNilList     = 'l'
	tagNilStrings  = 'w'
	tagNilPrefixes = 'q'
	tagNilMap      = 'm'
)

// EncodeValue canonically encodes a value for storage. It is strict: a
// value outside the pipeline's closed type set returns an error, which
// callers treat as "this record is uncacheable" rather than storing a
// lossy form that could not be restored exactly.
func EncodeValue(v any) ([]byte, error) {
	return appendValue(nil, v, false)
}

func appendValue(b []byte, v any, lenient bool) ([]byte, error) {
	var err error
	switch x := v.(type) {
	case nil:
		b = append(b, tagNil)
	case bool:
		if x {
			b = append(b, tagTrue)
		} else {
			b = append(b, tagFalse)
		}
	case int:
		b = appendFixed64(append(b, tagInt), uint64(x))
	case int64:
		b = appendFixed64(append(b, tagInt64), uint64(x))
	case float64:
		b = appendFixed64(append(b, tagFloat64), math.Float64bits(x))
	case string:
		b = appendBytes(append(b, tagString), []byte(x))
	case netip.Addr:
		raw, e := x.MarshalBinary()
		if e != nil {
			return b, e
		}
		b = appendBytes(append(b, tagAddr), raw)
	case netip.Prefix:
		raw, e := x.MarshalBinary()
		if e != nil {
			return b, e
		}
		b = appendBytes(append(b, tagPrefix), raw)
	case []any:
		if x == nil {
			b = append(b, tagNilList)
			return b, nil
		}
		b = appendUvarint(append(b, tagList), uint64(len(x)))
		for _, el := range x {
			if b, err = appendValue(b, el, lenient); err != nil {
				return b, err
			}
		}
	case []string:
		if x == nil {
			b = append(b, tagNilStrings)
			return b, nil
		}
		b = appendUvarint(append(b, tagStrings), uint64(len(x)))
		for _, s := range x {
			b = appendBytes(b, []byte(s))
		}
	case []netip.Prefix:
		if x == nil {
			b = append(b, tagNilPrefixes)
			return b, nil
		}
		b = appendUvarint(append(b, tagPrefixes), uint64(len(x)))
		for _, p := range x {
			raw, e := p.MarshalBinary()
			if e != nil {
				return b, e
			}
			b = appendBytes(b, raw)
		}
	case map[string]any:
		if x == nil {
			b = append(b, tagNilMap)
			return b, nil
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = appendUvarint(append(b, tagMap), uint64(len(keys)))
		for _, k := range keys {
			b = appendBytes(b, []byte(k))
			if b, err = appendValue(b, x[k], lenient); err != nil {
				return b, err
			}
		}
	default:
		if !lenient {
			return b, fmt.Errorf("cache: uncacheable value type %T", v)
		}
		// Digest-only fallback: fmt prints maps with sorted keys, so this
		// string is deterministic even for types the codec cannot restore.
		b = appendBytes(append(b, tagOpaque), []byte(fmt.Sprintf("%T|%v", v, v)))
	}
	return b, nil
}

// DecodeValue decodes one canonically-encoded value, rejecting trailing
// garbage. Every error means "treat as a cache miss".
func DecodeValue(data []byte) (any, error) {
	v, rest, err := decodeValue(data, interner{})
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cache: %d trailing bytes after value", len(rest))
	}
	return v, nil
}

// interner deduplicates the strings of one decoded value. Cached build
// blobs repeat the same small strings relentlessly — every device record
// holds the same attribute keys, interface names and device types — and
// decoding each occurrence into a fresh allocation dominates an otherwise
// warm restore. Long strings (rendered file contents) pass through
// untouched so the interner never pins large buffers.
type interner map[string]string

func (in interner) str(raw []byte) string {
	if len(raw) > 64 {
		return string(raw)
	}
	if s, ok := in[string(raw)]; ok {
		return s
	}
	s := string(raw)
	in[s] = s
	return s
}

func decodeValue(b []byte, in interner) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("cache: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNil:
		return nil, b, nil
	case tagNilList:
		return []any(nil), b, nil
	case tagNilStrings:
		return []string(nil), b, nil
	case tagNilPrefixes:
		return []netip.Prefix(nil), b, nil
	case tagNilMap:
		return map[string]any(nil), b, nil
	case tagFalse:
		return false, b, nil
	case tagTrue:
		return true, b, nil
	case tagInt, tagInt64, tagFloat64:
		u, rest, err := takeFixed64(b)
		if err != nil {
			return nil, nil, err
		}
		switch tag {
		case tagInt:
			return int(int64(u)), rest, nil
		case tagInt64:
			return int64(u), rest, nil
		default:
			return math.Float64frombits(u), rest, nil
		}
	case tagString:
		raw, rest, err := takeBytes(b)
		if err != nil {
			return nil, nil, err
		}
		return in.str(raw), rest, nil
	case tagAddr:
		raw, rest, err := takeBytes(b)
		if err != nil {
			return nil, nil, err
		}
		var a netip.Addr
		if err := a.UnmarshalBinary(raw); err != nil {
			return nil, nil, err
		}
		return a, rest, nil
	case tagPrefix:
		raw, rest, err := takeBytes(b)
		if err != nil {
			return nil, nil, err
		}
		var p netip.Prefix
		if err := p.UnmarshalBinary(raw); err != nil {
			return nil, nil, err
		}
		return p, rest, nil
	case tagList:
		n, rest, err := takeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		list := make([]any, 0, min(int(n), len(rest)))
		for i := uint64(0); i < n; i++ {
			var el any
			if el, rest, err = decodeValue(rest, in); err != nil {
				return nil, nil, err
			}
			list = append(list, el)
		}
		return list, rest, nil
	case tagStrings:
		n, rest, err := takeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		list := make([]string, 0, min(int(n), len(rest)))
		for i := uint64(0); i < n; i++ {
			var raw []byte
			if raw, rest, err = takeBytes(rest); err != nil {
				return nil, nil, err
			}
			list = append(list, in.str(raw))
		}
		return list, rest, nil
	case tagPrefixes:
		n, rest, err := takeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		list := make([]netip.Prefix, 0, min(int(n), len(rest)))
		for i := uint64(0); i < n; i++ {
			var raw []byte
			if raw, rest, err = takeBytes(rest); err != nil {
				return nil, nil, err
			}
			var p netip.Prefix
			if err := p.UnmarshalBinary(raw); err != nil {
				return nil, nil, err
			}
			list = append(list, p)
		}
		return list, rest, nil
	case tagMap:
		n, rest, err := takeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		m := make(map[string]any, min(int(n), len(rest)))
		for i := uint64(0); i < n; i++ {
			var key []byte
			if key, rest, err = takeBytes(rest); err != nil {
				return nil, nil, err
			}
			var val any
			if val, rest, err = decodeValue(rest, in); err != nil {
				return nil, nil, err
			}
			m[in.str(key)] = val
		}
		return m, rest, nil
	default:
		return nil, nil, fmt.Errorf("cache: unknown value tag %q", tag)
	}
}

func appendFixed64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func takeFixed64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("cache: truncated fixed64")
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, b[8:], nil
}

func appendBytes(b, raw []byte) []byte {
	b = appendUvarint(b, uint64(len(raw)))
	return append(b, raw...)
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("cache: truncated bytes (want %d, have %d)", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, b[i+1:], nil
		}
	}
	return 0, nil, fmt.Errorf("cache: truncated uvarint")
}
