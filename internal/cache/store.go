package cache

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is a content-addressed blob store: an in-memory LRU in front of an
// optional on-disk directory (conventionally `.ankcache/`). Entries are
// keyed by digest, so a stored payload is immutable by construction — a
// different payload has a different key. All methods are goroutine-safe.
//
// The store is strictly an accelerator: every failure mode (missing file,
// torn write, checksum mismatch, permission error) degrades to a cache
// miss and the corrupt entry is dropped, never surfaced as a build error.
// Deleting the directory wholesale is always safe.
type Store struct {
	dir string

	mu    sync.Mutex
	mem   *lru
	stats Stats
}

// Options bounds the in-memory layer. Zero values select defaults.
type Options struct {
	// MaxEntries caps the number of in-memory entries (default 16384).
	MaxEntries int
	// MaxBytes caps the in-memory payload bytes (default 256 MiB).
	MaxBytes int64
}

// Stats is a point-in-time snapshot of store activity.
type Stats struct {
	Hits         int64 // Get calls served (memory or disk)
	Misses       int64 // Get calls not served
	MemoryHits   int64 // subset of Hits served without touching disk
	Evictions    int64 // LRU entries displaced
	BytesRead    int64 // payload bytes returned by Get
	BytesWritten int64 // payload bytes accepted by Put
	DiskErrors   int64 // disk failures silently degraded to misses
}

// Entry header: magic, then the SHA-256 of the payload. The checksum is of
// the *payload*, independent of the digest key, so a truncated or bit-
// flipped file is detected even though its name still looks valid.
var diskMagic = [8]byte{'A', 'N', 'K', 'C', 'A', 'C', 'H', '1'}

// Open returns a store backed by dir, creating it if needed. An empty dir
// gives a memory-only store (Open never fails in that case).
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 16384
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 256 << 20
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: open %s: %w", dir, err)
		}
	}
	return &Store{dir: dir, mem: newLRU(opts.MaxEntries, opts.MaxBytes)}, nil
}

// NewMemory returns a memory-only store with default bounds.
func NewMemory() *Store {
	s, _ := Open("", Options{})
	return s
}

// Dir reports the backing directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// Get returns the payload stored under key, consulting memory first and
// then disk. The returned slice must not be modified by the caller.
func (s *Store) Get(key Digest) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.mem.get(key); ok {
		s.stats.Hits++
		s.stats.MemoryHits++
		s.stats.BytesRead += int64(len(data))
		return data, true
	}
	if s.dir != "" {
		if data, ok := s.readDisk(key); ok {
			s.mem.put(key, data)
			s.stats.Evictions = s.mem.evictions
			s.stats.Hits++
			s.stats.BytesRead += int64(len(data))
			return data, true
		}
	}
	s.stats.Misses++
	return nil, false
}

// Put stores payload under key in memory and, when configured, on disk.
// The store takes ownership of data; callers must not modify it afterwards.
func (s *Store) Put(key Digest, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem.put(key, data)
	s.stats.Evictions = s.mem.evictions
	s.stats.BytesWritten += int64(len(data))
	if s.dir != "" {
		s.writeDisk(key, data)
	}
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len reports the number of in-memory entries (tests and diagnostics).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem.entries)
}

// path fans entries out over 256 subdirectories by the first digest byte,
// keeping any single directory listing short on large stores.
func (s *Store) path(key Digest) string {
	hex := key.Hex()
	return filepath.Join(s.dir, hex[:2], hex[2:]+".bin")
}

func (s *Store) readDisk(key Digest) ([]byte, bool) {
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.stats.DiskErrors++
		}
		return nil, false
	}
	headerLen := len(diskMagic) + sha256.Size
	if len(raw) < headerLen || [8]byte(raw[:len(diskMagic)]) != diskMagic {
		s.dropCorrupt(path)
		return nil, false
	}
	payload := raw[headerLen:]
	if sha256.Sum256(payload) != [sha256.Size]byte(raw[len(diskMagic):headerLen]) {
		s.dropCorrupt(path)
		return nil, false
	}
	return payload, true
}

func (s *Store) dropCorrupt(path string) {
	s.stats.DiskErrors++
	os.Remove(path)
}

func (s *Store) writeDisk(key Digest, data []byte) {
	path := s.path(key)
	if _, err := os.Stat(path); err == nil {
		return // content-addressed: an existing entry is already identical
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.stats.DiskErrors++
		return
	}
	sum := sha256.Sum256(data)
	buf := make([]byte, 0, len(diskMagic)+len(sum)+len(data))
	buf = append(buf, diskMagic[:]...)
	buf = append(buf, sum[:]...)
	buf = append(buf, data...)
	// Write-to-temp, fsync, then rename, so readers never observe a torn
	// entry AND a crash just after the rename cannot leave an empty or
	// partial file under the final name (rename durability needs the data
	// on disk first, and the directory entry flushed after).
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		s.stats.DiskErrors++
		return
	}
	_, werr := tmp.Write(buf)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.stats.DiskErrors++
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.stats.DiskErrors++
		return
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		if err := dir.Sync(); err != nil {
			s.stats.DiskErrors++
		}
		dir.Close()
	} else {
		s.stats.DiskErrors++
	}
}
