package cache

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"autonetkit/internal/graph"
)

// roundTripValues is the pipeline's closed value vocabulary; every entry
// must encode strictly and decode back to the exact same Go type.
var roundTripValues = []any{
	nil,
	true,
	false,
	int(42),
	int(-7),
	int64(1 << 40),
	float64(3.25),
	"",
	"hello world",
	netip.MustParseAddr("10.0.0.1"),
	netip.MustParseAddr("2001:db8::1"),
	netip.MustParsePrefix("192.168.0.0/24"),
	[]string{"b", "a"},
	[]any(nil),
	[]string(nil),
	[]netip.Prefix(nil),
	map[string]any(nil),
	[]any{},
	[]netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	[]any{int(1), "two", netip.MustParseAddr("10.0.0.3"), nil},
	map[string]any{
		"zebra":    map[string]any{"password": "1234"},
		"asn":      int(100),
		"loopback": netip.MustParseAddr("10.0.0.32"),
		"ifaces":   []any{map[string]any{"id": "eth0", "cost": int(5)}},
	},
}

func TestCodecRoundTripExactTypes(t *testing.T) {
	for _, v := range roundTripValues {
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %#v: %v", v, err)
		}
		dec, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %#v: %v", v, err)
		}
		if !reflect.DeepEqual(dec, v) {
			t.Errorf("round trip %#v -> %#v", v, dec)
		}
		if v != nil && reflect.TypeOf(dec) != reflect.TypeOf(v) {
			t.Errorf("type drift: %T -> %T", v, dec)
		}
	}
}

func TestCodecDeterministicMapOrder(t *testing.T) {
	// Build "the same" map twice with different insertion orders; the
	// canonical encoding must be identical.
	a := map[string]any{}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		a[k] = k + "-v"
	}
	b := map[string]any{}
	for _, k := range []string{"delta", "gamma", "beta", "alpha"} {
		b[k] = k + "-v"
	}
	ea, _ := EncodeValue(a)
	eb, _ := EncodeValue(b)
	if !bytes.Equal(ea, eb) {
		t.Error("canonical encodings differ for equal maps")
	}
}

func TestCodecStrictRejectsUnknownTypes(t *testing.T) {
	type custom struct{ X int }
	for _, v := range []any{custom{1}, int32(5), []int{1, 2}, map[int]string{1: "x"}} {
		if _, err := EncodeValue(v); err == nil {
			t.Errorf("EncodeValue(%T) = nil error, want uncacheable", v)
		}
	}
}

func TestCodecRejectsTrailingGarbage(t *testing.T) {
	enc, _ := EncodeValue("x")
	if _, err := DecodeValue(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeValue(enc[:len(enc)-1]); err == nil {
		t.Error("truncated value accepted")
	}
	if _, err := DecodeValue(nil); err == nil {
		t.Error("empty value accepted")
	}
}

func TestHasherLenientFallbackAndFraming(t *testing.T) {
	h1 := NewHasher("t")
	h1.Str("ab", "c")
	h2 := NewHasher("t")
	h2.Str("a", "bc")
	if h1.Sum() == h2.Sum() {
		t.Error("framing collision: [ab c] == [a bc]")
	}
	// Lenient Value must accept arbitrary types without differing run to
	// run (fmt prints map keys sorted).
	type odd struct{ A, B int }
	h3 := NewHasher("t")
	h3.Value(odd{1, 2})
	h4 := NewHasher("t")
	h4.Value(odd{1, 2})
	if h3.Sum() != h4.Sum() {
		t.Error("lenient fallback is unstable")
	}
	h5 := NewHasher("t")
	h5.Value(odd{1, 3})
	if h3.Sum() == h5.Sum() {
		t.Error("lenient fallback ignores value content")
	}
}

func TestHasherAttrsOrderIndependent(t *testing.T) {
	a := graph.Attrs{"x": 1, "y": "two", "z": netip.MustParseAddr("10.0.0.1")}
	b := graph.Attrs{"z": netip.MustParseAddr("10.0.0.1"), "y": "two", "x": 1}
	h1 := NewHasher("t")
	h1.Attrs(a)
	h2 := NewHasher("t")
	h2.Attrs(b)
	if h1.Sum() != h2.Sum() {
		t.Error("attr digest depends on construction order")
	}
}

func TestStoreMemoryRoundTrip(t *testing.T) {
	s := NewMemory()
	key := NewHasher("k").Sum()
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store hit")
	}
	s.Put(key, []byte("payload"))
	got, ok := s.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestStoreDiskPersistenceAndCorruption(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := NewHasher("persist").Sum()
	s1.Put(key, []byte("durable"))

	// A second store over the same directory sees the entry.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "durable" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}

	// Flip a payload bit on disk: the entry must degrade to a miss and be
	// removed, never returned corrupt.
	path := s2.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, _ := Open(dir, Options{})
	if _, ok := s3.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not dropped from disk")
	}

	// Garbage that is not even a valid header is equally survivable.
	short := filepath.Join(dir, "zz", "short.bin")
	os.MkdirAll(filepath.Dir(short), 0o755)
	os.WriteFile(short, []byte("x"), 0o644)
	if _, ok := s3.Get(key); ok {
		t.Fatal("miss expected after corruption")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, _ := Open("", Options{MaxEntries: 2})
	keys := make([]Digest, 3)
	for i := range keys {
		h := NewHasher("evict")
		h.Int(i)
		keys[i] = h.Sum()
		s.Put(keys[i], []byte{byte(i)})
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Error("oldest entry not evicted")
	}
	for _, k := range keys[1:] {
		if _, ok := s.Get(k); !ok {
			t.Error("recent entry evicted")
		}
	}
	if s.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Stats().Evictions)
	}
}

func TestStoreByteBoundEviction(t *testing.T) {
	s, _ := Open("", Options{MaxBytes: 10})
	big := NewHasher("big").Sum()
	s.Put(big, bytes.Repeat([]byte{1}, 64))
	// A single oversized entry survives (never evict the just-inserted
	// entry), but inserting another displaces it.
	if s.Len() != 1 {
		t.Fatalf("Len = %d after oversized insert", s.Len())
	}
	other := NewHasher("other").Sum()
	s.Put(other, []byte{2})
	if _, ok := s.Get(big); ok {
		t.Error("oversized entry survived a second insert")
	}
}
