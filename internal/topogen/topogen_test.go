package topogen

import (
	"strings"
	"testing"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
	"autonetkit/internal/topoio"
)

func asnSet(g *graph.Graph) map[int]int {
	out := map[int]int{}
	for _, n := range g.Nodes() {
		if f, ok := graph.ToFloat(n.Get(core.AttrASN)); ok {
			out[int(f)]++
		}
	}
	return out
}

func TestFig5(t *testing.T) {
	g := Fig5()
	if g.NumNodes() != 5 || g.NumEdges() != 6 {
		t.Fatalf("fig5: %v", g)
	}
	asns := asnSet(g)
	if asns[1] != 4 || asns[2] != 1 {
		t.Errorf("asns = %v", asns)
	}
}

// E2 (structure): the Small-Internet lab matches Fig. 1 — 7 ASes, 14
// routers — and contains the §6.1 traceroute path as a physical walk.
func TestSmallInternetShape(t *testing.T) {
	g := SmallInternet()
	if g.NumNodes() != 14 {
		t.Fatalf("routers = %d, want 14", g.NumNodes())
	}
	asns := asnSet(g)
	if len(asns) != 7 {
		t.Fatalf("ASes = %d, want 7 (%v)", len(asns), asns)
	}
	want := map[int]int{1: 1, 20: 3, 30: 1, 40: 1, 100: 3, 200: 1, 300: 4}
	for asn, n := range want {
		if asns[asn] != n {
			t.Errorf("AS%d has %d routers, want %d", asn, asns[asn], n)
		}
	}
	if !g.IsConnected() {
		t.Error("lab disconnected")
	}
	// The §6.1 path exists hop by hop.
	path := []graph.ID{"as300r2", "as40r1", "as1r1", "as20r3", "as20r2", "as100r1", "as100r2"}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Errorf("missing link %s-%s for the §6.1 traceroute", path[i-1], path[i])
		}
	}
}

// E3 (structure): the NREN synthesiser hits the §3.2 statistics exactly.
func TestNRENStatistics(t *testing.T) {
	g, err := NREN(DefaultNREN())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1158 {
		t.Errorf("routers = %d, want 1158", g.NumNodes())
	}
	if g.NumEdges() != 1470 {
		t.Errorf("links = %d, want 1470", g.NumEdges())
	}
	asns := asnSet(g)
	if len(asns) != 42 {
		t.Errorf("ASes = %d, want 42", len(asns))
	}
	if !g.IsConnected() {
		t.Error("NREN model disconnected")
	}
}

func TestNRENDeterministic(t *testing.T) {
	a, err := NREN(DefaultNREN())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NREN(DefaultNREN())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.Src(), e.Dst()) {
			t.Fatalf("edge %v-%v differs across runs", e.Src(), e.Dst())
		}
	}
}

func TestNRENSmall(t *testing.T) {
	g, err := NREN(NRENConfig{ASes: 5, Routers: 30, Links: 40})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 30 || g.NumEdges() != 40 {
		t.Errorf("got %v", g)
	}
}

func TestNRENErrors(t *testing.T) {
	if _, err := NREN(NRENConfig{ASes: 1, Routers: 10, Links: 10}); err == nil {
		t.Error("single AS accepted")
	}
	if _, err := NREN(NRENConfig{ASes: 10, Routers: 5, Links: 10}); err == nil {
		t.Error("too few routers accepted")
	}
	if _, err := NREN(NRENConfig{ASes: 5, Routers: 100, Links: 3}); err == nil {
		t.Error("too few links accepted")
	}
}

func TestOscillationGadgetShape(t *testing.T) {
	g := OscillationGadget()
	if g.NumNodes() != 8 || g.NumEdges() != 7 {
		t.Fatalf("gadget: %v", g)
	}
	if !g.Node("rr1").Get("rr").(bool) || !g.Node("rr2").Get("rr").(bool) {
		t.Error("route reflectors unmarked")
	}
	// Clusters: c1 under rr1; c2, c3 under rr2.
	if g.Node("c1").Get("rr_cluster") != "rr1" || g.Node("c3").Get("rr_cluster") != "rr2" {
		t.Error("cluster assignment missing")
	}
	// The IGP-far exit (c3) carries the better MED (0 beats 10).
	if g.Edge("rr2", "c3").Get("ospf_cost") != 10 {
		t.Error("far-exit IGP cost missing")
	}
	if g.Edge("c2", "e2").Get("med") != 10 || g.Edge("c3", "e3").Get("med") != 0 {
		t.Error("MED attributes missing")
	}
	// All three externals announce the same prefix; e2/e3 share an AS so
	// their MEDs compare.
	for _, id := range []graph.ID{"e1", "e2", "e3"} {
		nets := g.Node(id).Get("bgp_networks").([]string)
		if len(nets) != 1 || nets[0] != "203.0.113.0/24" {
			t.Errorf("%s networks = %v", id, nets)
		}
	}
	if g.Node("e2").Get(core.AttrASN) != g.Node("e3").Get(core.AttrASN) {
		t.Error("e2 and e3 must share the neighbour AS for MED comparison")
	}
}

func TestWaxman(t *testing.T) {
	g, err := Waxman(50, 0.6, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Error("waxman graph disconnected after stitching")
	}
	// Deterministic.
	g2, _ := Waxman(50, 0.6, 0.3, 7)
	if g.NumEdges() != g2.NumEdges() {
		t.Error("waxman not deterministic")
	}
	if _, err := Waxman(1, 0.5, 0.5, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Waxman(10, 0, 0.5, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestPreferential(t *testing.T) {
	g, err := Preferential(40, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 40 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Error("BA graph disconnected")
	}
	// Heavy-tailed: max degree well above m.
	maxDeg := 0
	for _, n := range g.Nodes() {
		if d := g.Degree(n.ID()); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 5 {
		t.Errorf("max degree = %d, expected a hub", maxDeg)
	}
	if _, err := Preferential(3, 5, 1); err == nil {
		t.Error("n <= m accepted")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// Grid edge count: w(h-1) + h(w-1).
	if g.NumEdges() != 4*2+3*3 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if _, err := Grid(0, 5); err == nil {
		t.Error("zero dimension accepted")
	}
}

// The synthetic RocketFuel text round-trips through the §5.1 loader.
func TestRocketFuelTextLoads(t *testing.T) {
	g := SmallInternet()
	text := RocketFuelText(g)
	back, err := topoio.ReadRocketFuel(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() {
		t.Errorf("nodes = %d, want %d", back.NumNodes(), g.NumNodes())
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("edges = %d, want %d", back.NumEdges(), g.NumEdges())
	}
}
