// Package topogen builds the input topologies of the paper's case studies:
// the Netkit Small-Internet lab (Fig. 1), the Fig. 5 five-node example, a
// European-NREN-scale model matching the §3.2 statistics (42 ASes, 1158
// routers, 1470 links), the §7.2 oscillation gadget, and synthetic
// generators (Waxman, preferential attachment, grid, RocketFuel format)
// standing in for the paper's external data sources.
//
// All generators are deterministic: randomised ones take an explicit seed.
package topogen

import (
	"fmt"
	"math"
	"math/rand"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
)

// router adds a router node with an ASN to a graph.
func router(g *graph.Graph, id graph.ID, asn int) {
	g.AddNode(id, graph.Attrs{
		core.AttrASN:        asn,
		core.AttrDeviceType: core.DeviceRouter,
	})
}

func link(g *graph.Graph, a, b graph.ID) {
	g.AddEdge(a, b, graph.Attrs{"type": "physical"})
}

// Fig5 returns the paper's Fig. 5a input topology: five routers, ASNs
// {1,1,1,1,2}, six physical links.
func Fig5() *graph.Graph {
	g := graph.New()
	g.Set("name", "fig5")
	for i, asn := range []int{1, 1, 1, 1, 2} {
		router(g, graph.ID(fmt.Sprintf("r%d", i+1)), asn)
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		link(g, e[0], e[1])
	}
	return g
}

// SmallInternet returns the Netkit Small-Internet lab of Fig. 1: seven
// autonomous systems and fourteen routers. The inter-AS structure supports
// the paper's §6.1 traceroute (as300r2 → as40r1 → as1r1 → as20r3 → as20r2
// → as100r1 → as100r2).
func SmallInternet() *graph.Graph {
	g := graph.New()
	g.Set("name", "small-internet")
	asns := map[string][]string{}
	add := func(asn int, names ...string) {
		for _, n := range names {
			router(g, graph.ID(n), asn)
			asns[fmt.Sprint(asn)] = append(asns[fmt.Sprint(asn)], n)
		}
	}
	add(1, "as1r1")
	add(20, "as20r1", "as20r2", "as20r3")
	add(30, "as30r1")
	add(40, "as40r1")
	add(100, "as100r1", "as100r2", "as100r3")
	add(200, "as200r1")
	add(300, "as300r1", "as300r2", "as300r3", "as300r4")

	// Intra-AS structure.
	link(g, "as20r1", "as20r2")
	link(g, "as20r2", "as20r3")
	link(g, "as20r1", "as20r3")
	link(g, "as100r1", "as100r2")
	link(g, "as100r1", "as100r3")
	link(g, "as100r2", "as100r3")
	link(g, "as300r1", "as300r2")
	link(g, "as300r1", "as300r3")
	link(g, "as300r2", "as300r4")
	link(g, "as300r3", "as300r4")
	// Inter-AS structure (AS1 is the transit core).
	link(g, "as1r1", "as20r3")
	link(g, "as1r1", "as30r1")
	link(g, "as1r1", "as40r1")
	link(g, "as20r2", "as100r1")
	link(g, "as100r3", "as200r1")
	link(g, "as30r1", "as300r1")
	link(g, "as40r1", "as300r2")
	return g
}

// NRENConfig sizes the European-interconnect-scale model.
type NRENConfig struct {
	ASes    int // default 42 (GEANT + 41 NRENs)
	Routers int // default 1158
	Links   int // default 1470
	Seed    int64
}

// DefaultNREN matches the §3.2 statistics.
func DefaultNREN() NRENConfig { return NRENConfig{ASes: 42, Routers: 1158, Links: 1470} }

// NREN synthesises a model with the §3.2 shape: a backbone AS (GEANT-like
// ring with chords) interconnecting per-country NREN ASes, each an
// intra-AS tree with extra redundancy links, until the requested totals are
// met exactly.
func NREN(cfg NRENConfig) (*graph.Graph, error) {
	if cfg.ASes <= 1 {
		return nil, fmt.Errorf("topogen: need at least 2 ASes, got %d", cfg.ASes)
	}
	if cfg.Routers < cfg.ASes {
		return nil, fmt.Errorf("topogen: %d routers cannot fill %d ASes", cfg.Routers, cfg.ASes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()
	g.Set("name", "nren")

	// AS 1 is the backbone; it gets one router per attached NREN.
	nrens := cfg.ASes - 1
	backboneSize := nrens
	if backboneSize < 3 {
		backboneSize = 3
	}
	remaining := cfg.Routers - backboneSize
	if remaining < nrens {
		return nil, fmt.Errorf("topogen: router budget too small")
	}
	// Spread the remaining routers across NRENs.
	sizes := make([]int, nrens)
	for i := range sizes {
		sizes[i] = remaining / nrens
	}
	for i := 0; i < remaining%nrens; i++ {
		sizes[i]++
	}

	var edgeCount int
	addLink := func(a, b graph.ID) {
		if !g.HasEdge(a, b) && a != b {
			link(g, a, b)
			edgeCount++
		}
	}

	// Backbone ring.
	bb := make([]graph.ID, backboneSize)
	for i := range bb {
		bb[i] = graph.ID(fmt.Sprintf("geant%d", i))
		router(g, bb[i], 1)
	}
	for i := range bb {
		addLink(bb[i], bb[(i+1)%len(bb)])
	}

	// NREN trees, each homed onto one backbone router.
	asNodes := make([][]graph.ID, nrens)
	for i := 0; i < nrens; i++ {
		asn := i + 2
		nodes := make([]graph.ID, sizes[i])
		for j := range nodes {
			nodes[j] = graph.ID(fmt.Sprintf("as%dr%d", asn, j))
			router(g, nodes[j], asn)
			if j > 0 {
				// Random tree: attach to an earlier node.
				parent := nodes[rng.Intn(j)]
				addLink(nodes[j], parent)
			}
		}
		asNodes[i] = nodes
		// Home the NREN's first router onto its backbone router.
		addLink(nodes[0], bb[i%len(bb)])
	}

	if edgeCount > cfg.Links {
		return nil, fmt.Errorf("topogen: base structure needs %d links, budget is %d", edgeCount, cfg.Links)
	}
	// Spend the remaining link budget on intra-AS redundancy (choosing the
	// AS by size) and a few extra cross-border links.
	for guard := 0; edgeCount < cfg.Links; guard++ {
		if guard > cfg.Links*100 {
			return nil, fmt.Errorf("topogen: cannot place %d links", cfg.Links)
		}
		if rng.Intn(10) == 0 {
			// Cross-border NREN-to-NREN link.
			i, j := rng.Intn(nrens), rng.Intn(nrens)
			if i == j {
				continue
			}
			addLink(asNodes[i][rng.Intn(len(asNodes[i]))], asNodes[j][rng.Intn(len(asNodes[j]))])
			continue
		}
		i := rng.Intn(nrens)
		nodes := asNodes[i]
		if len(nodes) < 3 {
			continue
		}
		a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
		addLink(a, b)
	}
	return g, nil
}

// OscillationGadget returns the §7.2 experiment input: an RFC 3345-class
// MED/IGP oscillation condition. One AS with two route-reflector clusters;
// the contested prefix arrives three times — from AS 1 at c1 (cluster
// rr1), and from AS 2 at both c2 (MED 10, IGP-near) and c3 (MED 0,
// IGP-far), both in cluster rr2. Route reflection hides routes depending
// on the current selection, and the MED comparison (same neighbour AS)
// interacts non-transitively with the IGP-cost comparison, so no stable
// route assignment exists when the decision process includes the IGP
// tie-break: IOS, JunOS and C-BGP oscillate persistently (under
// asynchronous processing, not just in lockstep), while Quagga's 2013
// default — which skips the IGP comparison — converges.
func OscillationGadget() *graph.Graph {
	g := graph.New()
	g.Set("name", "oscillation-gadget")
	for _, n := range []struct {
		id      graph.ID
		asn     int
		rr      bool
		cluster string
	}{
		{"rr1", 100, true, ""}, {"rr2", 100, true, ""},
		{"c1", 100, false, "rr1"},
		{"c2", 100, false, "rr2"}, {"c3", 100, false, "rr2"},
	} {
		attrs := graph.Attrs{
			core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter, "rr": n.rr,
		}
		if n.cluster != "" {
			attrs["rr_cluster"] = n.cluster
		}
		g.AddNode(n.id, attrs)
	}
	// External announcers of the contested prefix. e2 and e3 are the same
	// neighbour AS, so their MEDs compare.
	for _, x := range []struct {
		id  graph.ID
		asn int
	}{{"e1", 1}, {"e2", 2}, {"e3", 2}} {
		g.AddNode(x.id, graph.Attrs{
			core.AttrASN: x.asn, core.AttrDeviceType: core.DeviceRouter,
			"bgp_networks": []string{"203.0.113.0/24"},
		})
	}
	cost := func(a, b graph.ID, c int) {
		g.AddEdge(a, b, graph.Attrs{"type": "physical", "ospf_cost": c})
	}
	cost("rr1", "c1", 1)
	cost("rr1", "rr2", 1)
	cost("rr2", "c2", 1)
	cost("rr2", "c3", 10) // the IGP-far exit carries the better MED
	// eBGP exits; MED set on the session edge.
	g.AddEdge("c1", "e1", graph.Attrs{"type": "physical"})
	g.AddEdge("c2", "e2", graph.Attrs{"type": "physical", "med": 10})
	g.AddEdge("c3", "e3", graph.Attrs{"type": "physical", "med": 0})
	return g
}

// Waxman generates a Waxman random graph in a single AS: n routers placed
// uniformly in the unit square, edge probability alpha*exp(-d/(beta*L)).
func Waxman(n int, alpha, beta float64, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topogen: waxman needs n >= 2")
	}
	if alpha <= 0 || beta <= 0 {
		return nil, fmt.Errorf("topogen: waxman parameters must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	g.Set("name", "waxman")
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	ids := make([]graph.ID, n)
	for i := 0; i < n; i++ {
		ids[i] = graph.ID(fmt.Sprintf("w%d", i))
		router(g, ids[i], 1)
		pts[i] = pt{rng.Float64(), rng.Float64()}
		g.Node(ids[i]).Set("x", pts[i].x)
		g.Node(ids[i]).Set("y", pts[i].y)
	}
	L := math.Sqrt2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(pts[i].x-pts[j].x, pts[i].y-pts[j].y)
			if rng.Float64() < alpha*math.Exp(-d/(beta*L)) {
				link(g, ids[i], ids[j])
			}
		}
	}
	// Stitch disconnected components so the result is usable as a lab.
	comps := g.ConnectedComponents()
	for i := 1; i < len(comps); i++ {
		link(g, comps[0][0], comps[i][0])
	}
	return g, nil
}

// Preferential generates a Barabási–Albert preferential-attachment graph
// in a single AS: each new router attaches to m existing ones.
func Preferential(n, m int, seed int64) (*graph.Graph, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("topogen: need n > m >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	g.Set("name", "preferential")
	ids := make([]graph.ID, 0, n)
	var stubs []graph.ID // nodes repeated by degree
	for i := 0; i < n; i++ {
		id := graph.ID(fmt.Sprintf("p%d", i))
		router(g, id, 1)
		if i == 0 {
			ids = append(ids, id)
			continue
		}
		targets := map[graph.ID]bool{}
		for len(targets) < m && len(targets) < len(ids) {
			var pick graph.ID
			if len(stubs) > 0 && rng.Intn(2) == 0 {
				pick = stubs[rng.Intn(len(stubs))]
			} else {
				pick = ids[rng.Intn(len(ids))]
			}
			targets[pick] = true
		}
		for t := range targets {
			link(g, id, t)
		}
		// Deterministic stub update (map iteration avoided).
		for _, t := range ids {
			if targets[t] {
				stubs = append(stubs, t, id)
			}
		}
		ids = append(ids, id)
	}
	return g, nil
}

// Grid generates a w x h grid in a single AS — a predictable topology for
// education labs.
func Grid(w, h int) (*graph.Graph, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topogen: grid dimensions must be positive")
	}
	g := graph.New()
	g.Set("name", "grid")
	id := func(x, y int) graph.ID { return graph.ID(fmt.Sprintf("g%d_%d", x, y)) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			router(g, id(x, y), 1)
			if x > 0 {
				link(g, id(x-1, y), id(x, y))
			}
			if y > 0 {
				link(g, id(x, y-1), id(x, y))
			}
		}
	}
	return g, nil
}

// RocketFuelText renders a graph in the RocketFuel cch subset, for
// exercising the §5.1 loader path on synthetic ISP maps.
func RocketFuelText(g *graph.Graph) string {
	out := ""
	for i, n := range g.Nodes() {
		out += fmt.Sprintf("%d @Synth,XX ->", i)
		idx := map[graph.ID]int{}
		for j, m := range g.Nodes() {
			idx[m.ID()] = j
		}
		for _, nb := range g.Neighbors(n.ID()) {
			out += fmt.Sprintf(" <%d>", idx[nb])
		}
		out += fmt.Sprintf(" =%s\n", n.ID())
	}
	return out
}
