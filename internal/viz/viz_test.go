package viz

import (
	"encoding/json"
	"strings"
	"testing"

	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/topogen"
)

func smallInternetANM(t *testing.T) *core.ANM {
	t.Helper()
	anm := core.NewANM()
	if _, err := anm.AddOverlayGraph(core.OverlayInput, topogen.SmallInternet()); err != nil {
		t.Fatal(err)
	}
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	return anm
}

func TestExportOverlayNodes(t *testing.T) {
	anm := smallInternetANM(t)
	doc := ExportOverlay(anm.Overlay(core.OverlayInput), Options{})
	if len(doc.Nodes) != 14 {
		t.Fatalf("nodes = %d", len(doc.Nodes))
	}
	var as1 *Node
	for i := range doc.Nodes {
		if doc.Nodes[i].ID == "as1r1" {
			as1 = &doc.Nodes[i]
		}
	}
	if as1 == nil || as1.Group != "1" {
		t.Errorf("as1r1 = %+v (grouping by ASN expected)", as1)
	}
}

// E5: the eBGP overlay exports with dual-line (bidirectional) session
// marking, as in Fig. 6.
func TestE5_EBGPBidirectionalFolding(t *testing.T) {
	anm := smallInternetANM(t)
	ebgp := anm.Overlay(design.OverlayEBGP)
	doc := ExportOverlay(ebgp, Options{})
	if !doc.Directed {
		t.Error("ebgp doc should be directed")
	}
	// 7 inter-AS links -> 14 directed sessions -> 7 folded bidirectional
	// links.
	if len(doc.Links) != 7 {
		t.Fatalf("links = %d, want 7 folded", len(doc.Links))
	}
	for _, l := range doc.Links {
		if !l.Bidirectional {
			t.Errorf("link %s-%s not marked bidirectional", l.Source, l.Target)
		}
	}
}

func TestExportUndirectedNotFolded(t *testing.T) {
	anm := smallInternetANM(t)
	doc := ExportOverlay(anm.Overlay(design.OverlayOSPF), Options{})
	for _, l := range doc.Links {
		if l.Bidirectional {
			t.Error("undirected link marked bidirectional")
		}
	}
}

func TestLabelAttrs(t *testing.T) {
	anm := core.NewANM()
	ov, _ := anm.AddOverlay("x")
	ov.AddNode("r1", graph.Attrs{"asn": 5, "vendor": "quagga"})
	doc := ExportOverlay(ov, Options{LabelAttrs: []string{"vendor"}})
	if doc.Nodes[0].Attrs["vendor"] != "quagga" {
		t.Errorf("attrs = %v", doc.Nodes[0].Attrs)
	}
}

func TestHighlightAndJSON(t *testing.T) {
	anm := smallInternetANM(t)
	doc := ExportOverlay(anm.Overlay(core.OverlayInput), Options{})
	path := []string{"as300r2", "as40r1", "as1r1"}
	doc.AddHighlight([]string{path[0], path[len(path)-1]}, path)
	blob, err := doc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Highlights) != 1 || len(back.Highlights[0].Paths[0]) != 3 {
		t.Errorf("highlights = %+v", back.Highlights)
	}
	if back.Name != "input" {
		t.Errorf("name = %q", back.Name)
	}
}

func TestExportGraph(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "b", graph.Attrs{"cost": 5})
	doc := ExportGraph("measured", g, Options{})
	if len(doc.Nodes) != 2 || len(doc.Links) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Links[0].Attrs["cost"] != 5 {
		t.Errorf("link attrs = %v", doc.Links[0].Attrs)
	}
}

func TestHTMLSelfContained(t *testing.T) {
	anm := smallInternetANM(t)
	doc := ExportOverlay(anm.Overlay(core.OverlayInput), Options{})
	html, err := doc.HTML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "const doc =", "as100r1", "</html>"} {
		if !strings.Contains(html, want) {
			t.Errorf("html missing %q", want)
		}
	}
	if strings.Contains(html, "http://") && !strings.Contains(html, "w3.org/2000/svg") {
		t.Error("html references external resources")
	}
	if strings.Contains(html, "cdn") || strings.Contains(html, "d3js.org") {
		t.Error("html not self-contained")
	}
}

func TestDeterministicExport(t *testing.T) {
	a := ExportOverlay(smallInternetANM(t).Overlay(design.OverlayEBGP), Options{})
	b := ExportOverlay(smallInternetANM(t).Overlay(design.OverlayEBGP), Options{})
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if string(ja) != string(jb) {
		t.Error("export not deterministic")
	}
}
