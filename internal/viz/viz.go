// Package viz exports overlay topologies and measurement results as the
// D3-style JSON documents the paper's visualization system consumes (§5.6):
// nodes with group and label attributes, links (with bidirectional session
// marking for the Fig. 6 dual-line rendering), and highlight messages for
// paths and node sets (the §6.1 msg.highlight call). A self-contained HTML
// viewer with a small force layout renders the JSON in any browser without
// external dependencies.
package viz

import (
	"encoding/json"
	"fmt"
	"sort"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
)

// Node is one rendered node.
type Node struct {
	ID    string         `json:"id"`
	Label string         `json:"label"`
	Group string         `json:"group,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Link is one rendered link; Bidirectional marks session pairs drawn as
// dual lines (Fig. 6).
type Link struct {
	Source        string         `json:"source"`
	Target        string         `json:"target"`
	Bidirectional bool           `json:"bidirectional,omitempty"`
	Attrs         map[string]any `json:"attrs,omitempty"`
}

// Highlight marks nodes and paths to emphasise (§6.1 traceroute plots).
type Highlight struct {
	Nodes []string   `json:"nodes,omitempty"`
	Paths [][]string `json:"paths,omitempty"`
}

// Doc is the interchange document.
type Doc struct {
	Name       string      `json:"name"`
	Directed   bool        `json:"directed"`
	Nodes      []Node      `json:"nodes"`
	Links      []Link      `json:"links"`
	Highlights []Highlight `json:"highlights,omitempty"`
}

// Options controls export.
type Options struct {
	// GroupBy selects the node attribute used for visual grouping
	// (default "asn", the paper's AS grouping).
	GroupBy string
	// LabelAttrs lists extra attributes copied into each node's Attrs for
	// hover display ("full attribute information available by hovering").
	LabelAttrs []string
}

// ExportOverlay renders one overlay into a document.
func ExportOverlay(ov *core.Overlay, opts Options) *Doc {
	if opts.GroupBy == "" {
		opts.GroupBy = core.AttrASN
	}
	doc := &Doc{Name: ov.Name(), Directed: ov.Directed()}
	for _, n := range ov.Nodes() {
		vn := Node{ID: string(n.ID()), Label: n.Label()}
		if v := n.Get(opts.GroupBy); v != nil {
			vn.Group = fmt.Sprint(v)
		}
		if len(opts.LabelAttrs) > 0 {
			vn.Attrs = map[string]any{}
			for _, key := range opts.LabelAttrs {
				if v := n.Get(key); v != nil {
					vn.Attrs[key] = v
				}
			}
		}
		doc.Nodes = append(doc.Nodes, vn)
	}
	seen := map[[2]string]int{} // for bidirectional folding
	for _, e := range ov.Edges() {
		src, dst := string(e.SrcID()), string(e.DstID())
		if ov.Directed() {
			if idx, ok := seen[[2]string{dst, src}]; ok {
				doc.Links[idx].Bidirectional = true
				continue
			}
		}
		l := Link{Source: src, Target: dst}
		if attrs := e.Attrs(); len(attrs) > 0 {
			l.Attrs = map[string]any{}
			keys := make([]string, 0, len(attrs))
			for k := range attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				l.Attrs[k] = attrs[k]
			}
		}
		doc.Links = append(doc.Links, l)
		seen[[2]string{src, dst}] = len(doc.Links) - 1
	}
	return doc
}

// ExportGraph renders a bare graph (e.g. a measured topology).
func ExportGraph(name string, g *graph.Graph, opts Options) *Doc {
	anm := core.NewANM()
	ov, _ := anm.AddOverlayGraph(name, g)
	return ExportOverlay(ov, opts)
}

// AddHighlight appends a highlight message — the paper's
// msg.highlight(nodes, [], [path]).
func (d *Doc) AddHighlight(nodes []string, paths ...[]string) {
	d.Highlights = append(d.Highlights, Highlight{Nodes: nodes, Paths: paths})
}

// JSON serialises the document.
func (d *Doc) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// HTML returns a self-contained page rendering the document with a small
// force-directed layout (no external libraries, viewable offline).
func (d *Doc) HTML() (string, error) {
	blob, err := d.JSON()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(htmlShell, d.Name, string(blob)), nil
}

const htmlShell = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>autonetkit: %s</title>
<style>
body { font-family: sans-serif; margin: 0; }
svg { width: 100vw; height: 100vh; background: #fafafa; }
line { stroke: #999; stroke-width: 1.2; }
line.bidi { stroke-width: 2.6; stroke: #777; }
line.hl { stroke: #d62728; stroke-width: 3; }
circle { fill: #4477aa; stroke: #fff; stroke-width: 1.5; }
circle.hl { fill: #d62728; }
text { font-size: 10px; pointer-events: none; }
</style></head><body>
<svg id="view"></svg>
<script>
const doc = %s;
const W = window.innerWidth, H = window.innerHeight;
const nodes = doc.nodes.map((n, i) => ({...n,
  x: W/2 + 200*Math.cos(2*Math.PI*i/doc.nodes.length),
  y: H/2 + 200*Math.sin(2*Math.PI*i/doc.nodes.length), vx: 0, vy: 0}));
const idx = {}; nodes.forEach((n, i) => idx[n.id] = i);
const links = doc.links.map(l => ({...l, s: idx[l.source], t: idx[l.target]}));
const hlNodes = new Set(), hlEdges = new Set();
(doc.highlights || []).forEach(h => {
  (h.nodes || []).forEach(n => hlNodes.add(n));
  (h.paths || []).forEach(p => { for (let i = 1; i < p.length; i++) {
    hlEdges.add(p[i-1] + "|" + p[i]); hlEdges.add(p[i] + "|" + p[i-1]); }});
});
for (let iter = 0; iter < 300; iter++) {
  for (const a of nodes) for (const b of nodes) {
    if (a === b) continue;
    const dx = a.x-b.x, dy = a.y-b.y, d2 = dx*dx+dy*dy+0.01;
    const f = 2000/d2; a.vx += f*dx/Math.sqrt(d2); a.vy += f*dy/Math.sqrt(d2);
  }
  for (const l of links) {
    const a = nodes[l.s], b = nodes[l.t];
    const dx = b.x-a.x, dy = b.y-a.y, d = Math.sqrt(dx*dx+dy*dy)+0.01;
    const f = 0.02*(d-80);
    a.vx += f*dx/d; a.vy += f*dy/d; b.vx -= f*dx/d; b.vy -= f*dy/d;
  }
  for (const n of nodes) {
    n.vx += (W/2-n.x)*0.001; n.vy += (H/2-n.y)*0.001;
    n.x += n.vx*0.3; n.y += n.vy*0.3; n.vx *= 0.6; n.vy *= 0.6;
  }
}
const svg = document.getElementById("view");
const NS = "http://www.w3.org/2000/svg";
for (const l of links) {
  const a = nodes[l.s], b = nodes[l.t];
  const e = document.createElementNS(NS, "line");
  e.setAttribute("x1", a.x); e.setAttribute("y1", a.y);
  e.setAttribute("x2", b.x); e.setAttribute("y2", b.y);
  let cls = l.bidirectional ? "bidi" : "";
  if (hlEdges.has(l.source + "|" + l.target)) cls += " hl";
  e.setAttribute("class", cls.trim());
  svg.appendChild(e);
}
for (const n of nodes) {
  const c = document.createElementNS(NS, "circle");
  c.setAttribute("cx", n.x); c.setAttribute("cy", n.y); c.setAttribute("r", 7);
  if (hlNodes.has(n.id)) c.setAttribute("class", "hl");
  const title = document.createElementNS(NS, "title");
  title.textContent = n.id + " " + JSON.stringify(n.attrs || {});
  c.appendChild(title);
  svg.appendChild(c);
  const t = document.createElementNS(NS, "text");
  t.setAttribute("x", n.x + 9); t.setAttribute("y", n.y + 3);
  t.textContent = n.label;
  svg.appendChild(t);
}
</script></body></html>
`
