package render

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"autonetkit/internal/tmpl"
)

// The embedded template library. Templates deliberately mirror the target
// configuration languages line for line (§4.1: "templates closely mirror
// the target configuration language, so are familiar to users experienced
// in network configuration"); all non-trivial logic lives in the compiler.

// DeviceTemplate is one output file of a syntax's template set.
type DeviceTemplate struct {
	// RelPath is the output path relative to the device's dst_folder; empty
	// Dir means the file lands at the folder root.
	RelPath string
	// When names a device-tree path that must exist for the file to be
	// rendered (e.g. no bgpd.conf without a bgp block). Empty renders
	// always.
	When string
	// AtLabRoot places the file next to (not inside) the device folder,
	// with the device hostname prefixed — Netkit's <machine>.startup
	// convention.
	AtLabRoot bool
	Template  *tmpl.Template
}

// syntaxTemplates maps a device syntax to its template set.
var syntaxTemplates = map[string][]DeviceTemplate{}

// labTemplates maps a platform to its lab-level files (lab.conf, lab.net,
// topology.vmm, lab.cli), rendered once per (host, platform) with context
// {lab, nodes}.
var labTemplates = map[string][]labTemplate{}

type labTemplate struct {
	// RelPath is relative to "<host>/<platform>/".
	RelPath  string
	Template *tmpl.Template
}

// RegisterDeviceTemplate appends an output file to a syntax's template set
// (the §7 extension point: a new protocol adds its template here).
func RegisterDeviceTemplate(syntax string, t DeviceTemplate) {
	invalidateSyntaxFingerprint(syntax)
	syntaxTemplates[syntax] = append(syntaxTemplates[syntax], t)
}

// DeviceTemplates returns a copy of the syntax's current template set.
func DeviceTemplates(syntax string) []DeviceTemplate {
	out := make([]DeviceTemplate, len(syntaxTemplates[syntax]))
	copy(out, syntaxTemplates[syntax])
	return out
}

// ReplaceDeviceTemplates swaps a syntax's whole template set, returning the
// previous one so callers (template experiments, tests) can restore it. An
// empty replacement deletes the syntax's per-device files entirely.
func ReplaceDeviceTemplates(syntax string, ts []DeviceTemplate) []DeviceTemplate {
	invalidateSyntaxFingerprint(syntax)
	prev := syntaxTemplates[syntax]
	if len(ts) == 0 {
		delete(syntaxTemplates, syntax)
	} else {
		syntaxTemplates[syntax] = append([]DeviceTemplate(nil), ts...)
	}
	return prev
}

// syntaxFPCache memoises SyntaxFingerprint per syntax: the render cache asks
// for it once per device, and rehashing every template source each time
// dominates an otherwise fully-warm render. Any registration operation
// invalidates the memo; mutating an already-registered template's Funcs
// without re-registering is not tracked (the shipped library never does).
var (
	syntaxFPMu    sync.Mutex
	syntaxFPCache = map[string]string{}
)

func invalidateSyntaxFingerprint(syntax string) {
	syntaxFPMu.Lock()
	delete(syntaxFPCache, syntax)
	registryFPCache = ""
	syntaxFPMu.Unlock()
}

// registryFPCache memoises RegistryFingerprint; any registration operation
// clears it.
var registryFPCache string

// RegistryFingerprint hashes the identity of the entire template registry —
// every syntax's device templates and every platform's lab templates, in
// name order. The whole-build render cache folds it into its key: restored
// file sets include lab-level output, so any template change anywhere must
// invalidate them.
func RegistryFingerprint() string {
	syntaxFPMu.Lock()
	defer syntaxFPMu.Unlock()
	if registryFPCache != "" {
		return registryFPCache
	}
	h := sha256.New()
	syntaxes := make([]string, 0, len(syntaxTemplates))
	for s := range syntaxTemplates {
		syntaxes = append(syntaxes, s)
	}
	sort.Strings(syntaxes)
	for _, s := range syntaxes {
		fmt.Fprintf(h, "syntax:%s|", s)
		for _, t := range syntaxTemplates[s] {
			for _, field := range []string{t.RelPath, t.When, fmt.Sprint(t.AtLabRoot), t.Template.Fingerprint()} {
				fmt.Fprintf(h, "%d:%s|", len(field), field)
			}
		}
	}
	platforms := make([]string, 0, len(labTemplates))
	for p := range labTemplates {
		platforms = append(platforms, p)
	}
	sort.Strings(platforms)
	for _, p := range platforms {
		fmt.Fprintf(h, "platform:%s|", p)
		for _, t := range labTemplates[p] {
			for _, field := range []string{t.RelPath, t.Template.Fingerprint()} {
				fmt.Fprintf(h, "%d:%s|", len(field), field)
			}
		}
	}
	registryFPCache = hex.EncodeToString(h.Sum(nil))
	return registryFPCache
}

// SyntaxFingerprint hashes the identity of a syntax's full template set —
// every output path, render condition, placement flag and template
// fingerprint, in registration order. The render cache folds it into each
// device's key, so registering, replacing or editing any template of the
// syntax invalidates exactly the devices rendered through that syntax.
func SyntaxFingerprint(syntax string) string {
	syntaxFPMu.Lock()
	defer syntaxFPMu.Unlock()
	if fp, ok := syntaxFPCache[syntax]; ok {
		return fp
	}
	h := sha256.New()
	for _, t := range syntaxTemplates[syntax] {
		for _, field := range []string{t.RelPath, t.When, fmt.Sprint(t.AtLabRoot), t.Template.Fingerprint()} {
			fmt.Fprintf(h, "%d:%s|", len(field), field)
		}
	}
	fp := hex.EncodeToString(h.Sum(nil))
	syntaxFPCache[syntax] = fp
	return fp
}

// RegisterLabTemplate appends a lab-level file to a platform.
func RegisterLabTemplate(platform string, t labTemplate) {
	syntaxFPMu.Lock()
	registryFPCache = ""
	syntaxFPMu.Unlock()
	labTemplates[platform] = append(labTemplates[platform], t)
}

// --- Quagga (the paper's §4.1/§6.1 reference syntax) ---

const quaggaZebra = `hostname ${node.zebra.hostname}
password ${node.zebra.password}
enable password ${node.zebra.password}
% for interface in node.interfaces:
interface ${interface.id}
  description ${interface.description}
% endfor
log file /var/log/zebra/zebra.log
`

// quaggaOspfd is the paper's §4.1 example template, verbatim in structure.
const quaggaOspfd = `hostname ${node.zebra.hostname}
password ${node.zebra.password}
% for interface in node.interfaces:
interface ${interface.id}
  ip ospf cost ${interface.ospf_cost}
% endfor
router ospf
% for interface in node.ospf.passive_interfaces:
  passive-interface ${interface}
% endfor
% for link in node.ospf.ospf_links:
  network ${link.network.cidr} area ${link.area}
% endfor
`

const quaggaBgpd = `hostname ${node.zebra.hostname}
password ${node.zebra.password}
router bgp ${node.bgp.asn}
  bgp router-id ${node.bgp.router_id}
  no synchronization
% for network in node.bgp.networks:
  network ${network.cidr}
% endfor
% for nbr in node.bgp.ebgp_neighbors:
  neighbor ${nbr.ip} remote-as ${nbr.remote_asn}
  neighbor ${nbr.ip} description ${nbr.description}
% if nbr.med != 0:
  neighbor ${nbr.ip} route-map med-${nbr.med} out
% endif
% if nbr.local_pref != 0:
  neighbor ${nbr.ip} route-map lp-${nbr.local_pref} in
% endif
% endfor
% for nbr in node.bgp.ibgp_neighbors:
  neighbor ${nbr.ip} remote-as ${nbr.remote_asn}
  neighbor ${nbr.ip} update-source ${nbr.update_source}
  neighbor ${nbr.ip} description ${nbr.description}
% if nbr.rr_client:
  neighbor ${nbr.ip} route-reflector-client
% endif
% endfor
% for nbr in node.bgp.ebgp_neighbors:
% if nbr.med != 0:
route-map med-${nbr.med} permit 10
  set metric ${nbr.med}
% endif
% if nbr.local_pref != 0:
route-map lp-${nbr.local_pref} permit 10
  set local-preference ${nbr.local_pref}
% endif
% if nbr.policy != '':
! policy configlet for ${nbr.ip}
${nbr.policy}
% endif
% endfor
`

const quaggaIsisd = `hostname ${node.zebra.hostname}
password ${node.zebra.password}
router isis ${node.isis.process}
  net ${node.isis.net}
  metric-style wide
% for interface in node.isis.interfaces:
interface ${interface}
  ip router isis ${node.isis.process}
% endfor
`

const quaggaDaemons = `zebra=yes
% for d in node.quagga.daemons:
% if d.name != 'zebra':
${d.name}=yes
% endif
% endfor
`

const netkitStartup = `% for interface in node.interfaces:
/sbin/ifconfig ${interface.id} ${interface.ip_address} netmask ${interface.network.netmask} broadcast ${interface.network.broadcast} up
% endfor
% if 'loopback' in node:
/sbin/ifconfig lo:1 ${node.loopback.ip} netmask 255.255.255.255 up
% endif
% if 'gateway' in node:
/sbin/route add default gw ${node.gateway}
% endif
% if 'quagga' in node:
/etc/init.d/zebra start
% endif
`

// --- Cisco IOS ---

const iosConfig = `!
hostname ${node.hostname}
!
% for interface in node.interfaces:
interface ${interface.id}
 description ${interface.description}
 ip address ${interface.ip_address} ${interface.network.netmask}
% if 'ospf' in node:
 ip ospf cost ${interface.ospf_cost}
% endif
 no shutdown
!
% endfor
% if 'loopback' in node:
interface ${node.loopback.id}
 ip address ${node.loopback.ip} 255.255.255.255
!
% endif
% if 'ospf' in node:
router ospf ${node.ospf.process_id}
% for interface in node.ospf.passive_interfaces:
 passive-interface ${interface}
% endfor
% for link in node.ospf.ospf_links:
 network ${link.network.network} ${link.network.wildcard} area ${link.area}
% endfor
!
% endif
% if 'bgp' in node:
router bgp ${node.bgp.asn}
 bgp router-id ${node.bgp.router_id}
% for network in node.bgp.networks:
 network ${network.network} mask ${network.netmask}
% endfor
% for nbr in node.bgp.ebgp_neighbors:
 neighbor ${nbr.ip} remote-as ${nbr.remote_asn}
 neighbor ${nbr.ip} description ${nbr.description}
% if nbr.med != 0:
 neighbor ${nbr.ip} route-map med-${nbr.med} out
% endif
% if nbr.local_pref != 0:
 neighbor ${nbr.ip} route-map lp-${nbr.local_pref} in
% endif
% endfor
% for nbr in node.bgp.ibgp_neighbors:
 neighbor ${nbr.ip} remote-as ${nbr.remote_asn}
 neighbor ${nbr.ip} update-source ${node.loopback.id}
% if nbr.rr_client:
 neighbor ${nbr.ip} route-reflector-client
% endif
% endfor
!
% for nbr in node.bgp.ebgp_neighbors:
% if nbr.med != 0:
route-map med-${nbr.med} permit 10
 set metric ${nbr.med}
!
% endif
% if nbr.local_pref != 0:
route-map lp-${nbr.local_pref} permit 10
 set local-preference ${nbr.local_pref}
!
% endif
% endfor
% endif
end
`

// --- Juniper JunOS ---

const junosConfig = `system {
    host-name ${node.hostname};
}
interfaces {
% for interface in node.interfaces:
    ${interface.id} {
        description "${interface.description}";
        unit 0 {
            family inet {
                address ${interface.ip_address}/${interface.prefixlen};
            }
        }
    }
% endfor
% if 'loopback' in node:
    ${node.loopback.id} {
        unit 0 {
            family inet {
                address ${node.loopback.ip}/32;
            }
        }
    }
% endif
}
% if 'ospf' in node or 'bgp' in node:
protocols {
% if 'ospf' in node:
    ospf {
% for link in node.ospf.ospf_links:
        area ${link.area} {
            interface ${link.network.cidr} {
                metric ${link.cost};
% if link.passive:
                passive;
% endif
            }
        }
% endfor
    }
% endif
% if 'bgp' in node:
    bgp {
% for nbr in node.bgp.ebgp_neighbors:
        group ebgp-${nbr.remote_asn}-${nbr.ip} {
            type external;
            peer-as ${nbr.remote_asn};
% if nbr.med != 0:
            metric-out ${nbr.med};
% endif
% if nbr.local_pref != 0:
            local-preference ${nbr.local_pref};
% endif
            neighbor ${nbr.ip};
        }
% endfor
% for nbr in node.bgp.ibgp_neighbors:
        group ibgp-${nbr.ip} {
            type internal;
            local-address ${node.loopback.ip};
% if nbr.rr_client:
            cluster ${node.bgp.router_id};
% endif
            neighbor ${nbr.ip};
        }
% endfor
    }
% endif
}
% endif
% if 'bgp' in node:
routing-options {
    autonomous-system ${node.bgp.asn};
% if 'router_id' in node.bgp:
    router-id ${node.bgp.router_id};
% endif
## Advertised prefixes; stands in for the static + export-policy pair a
## production JunOS config would carry.
% for network in node.bgp.networks:
    advertise ${network.cidr};
% endfor
}
% endif
`

// --- C-BGP (lab-level script) ---

const cbgpLab = `# C-BGP script generated by autonetkit
% for node in nodes:
net add node ${node.loopback.ip}
% endfor
% for link in lab.links:
net add link ${link.src} ${link.dst} ${link.weight}
% endfor
% for node in nodes:
net node ${node.loopback.ip} domain ${node.asn}
% endfor
% for node in nodes:
bgp add router ${node.bgp.asn} ${node.loopback.ip}
bgp router ${node.loopback.ip}
% for network in node.bgp.networks:
  add network ${network.cidr}
% endfor
% for nbr in node.bgp.ebgp_neighbors:
  add peer ${nbr.remote_asn} ${nbr.peer_lo}
% if nbr.local_pref != 0:
  peer ${nbr.peer_lo} filter in add-rule action "local-pref ${nbr.local_pref}"
% endif
% if nbr.med != 0:
  peer ${nbr.peer_lo} filter out add-rule action "metric ${nbr.med}"
% endif
  peer ${nbr.peer_lo} up
% endfor
% for nbr in node.bgp.ibgp_neighbors:
  add peer ${nbr.remote_asn} ${nbr.ip}
% if nbr.rr_client:
  peer ${nbr.ip} rr-client
% endif
  peer ${nbr.ip} up
% endfor
  exit
% endfor
sim run
`

// --- platform lab files ---

const netkitLabConf = `LAB_DESCRIPTION="${lab.description}"
LAB_AUTHOR="autonetkit"
LAB_VERSION=1
% for m in lab.machines:
% for ifc in m.ifaces:
${m.name}[${ifc.id}]=${ifc.cd}
% endfor
${m.name}[${m.tap.interface}]=tap,${lab.tap_host},${m.tap.ip}
% endfor
`

const dynagenLabNet = `autostart = False
[localhost]
    [[7200]]
        image = ios-image.bin
        npe = npe-400
% for r in lab.routers:
    [[ROUTER ${r.name}]]
        model = ${r.model}
% for l in r.links:
        ${l.id} = NIO_udp:${l.cd}
% endfor
        cnfg = ${r.name}.cfg
% endfor
`

const junosphereVMM = `topology {
% for vm in lab.vms:
    vm "${vm.name}" {
        vmtype "vjx";
        config "${vm.name}.conf";
    }
% endfor
}
`

func init() {
	// Quagga on Netkit.
	RegisterDeviceTemplate("quagga", DeviceTemplate{RelPath: "etc/quagga/zebra.conf", When: "zebra", Template: tmpl.MustParse("quagga/zebra.conf", quaggaZebra)})
	RegisterDeviceTemplate("quagga", DeviceTemplate{RelPath: "etc/quagga/ospfd.conf", When: "ospf", Template: tmpl.MustParse("quagga/ospfd.conf", quaggaOspfd)})
	RegisterDeviceTemplate("quagga", DeviceTemplate{RelPath: "etc/quagga/bgpd.conf", When: "bgp", Template: tmpl.MustParse("quagga/bgpd.conf", quaggaBgpd)})
	RegisterDeviceTemplate("quagga", DeviceTemplate{RelPath: "etc/quagga/isisd.conf", When: "isis", Template: tmpl.MustParse("quagga/isisd.conf", quaggaIsisd)})
	RegisterDeviceTemplate("quagga", DeviceTemplate{RelPath: "etc/quagga/daemons", When: "quagga", Template: tmpl.MustParse("quagga/daemons", quaggaDaemons)})
	RegisterDeviceTemplate("quagga", DeviceTemplate{RelPath: ".startup", AtLabRoot: true, Template: tmpl.MustParse("netkit/startup", netkitStartup)})

	RegisterDeviceTemplate("ios", DeviceTemplate{RelPath: ".cfg", AtLabRoot: true, Template: tmpl.MustParse("ios/config", iosConfig)})
	RegisterDeviceTemplate("junos", DeviceTemplate{RelPath: ".conf", AtLabRoot: true, Template: tmpl.MustParse("junos/config", junosConfig)})

	RegisterLabTemplate("netkit", labTemplate{RelPath: "lab.conf", Template: tmpl.MustParse("netkit/lab.conf", netkitLabConf)})
	RegisterLabTemplate("dynagen", labTemplate{RelPath: "lab.net", Template: tmpl.MustParse("dynagen/lab.net", dynagenLabNet)})
	RegisterLabTemplate("junosphere", labTemplate{RelPath: "topology.vmm", Template: tmpl.MustParse("junosphere/topology.vmm", junosphereVMM)})
	RegisterLabTemplate("cbgp", labTemplate{RelPath: "lab.cli", Template: tmpl.MustParse("cbgp/lab.cli", cbgpLab)})
}
