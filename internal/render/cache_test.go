package render

import (
	"context"
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/obs"
	"autonetkit/internal/tmpl"
)

func renderHash(t *testing.T, fs *FileSet) string {
	t.Helper()
	var sb []byte
	for _, p := range fs.Paths() {
		c, _ := fs.Read(p)
		sb = append(sb, p...)
		sb = append(sb, 0)
		sb = append(sb, c...)
		sb = append(sb, 0)
	}
	return string(sb)
}

func TestRenderCacheWarmIsByteIdentical(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	store := cache.NewMemory()

	colCold := obs.NewCollector()
	cold, err := RenderWith(context.Background(), db, Options{Cache: store, Obs: colCold})
	if err != nil {
		t.Fatal(err)
	}
	if colCold.Snapshot().Counters[obs.CounterRenderCacheHits] != 0 {
		t.Error("cold build hit the cache")
	}
	if colCold.Snapshot().Counters[obs.CounterRenderCacheMisses] != int64(db.Len()) {
		t.Errorf("cold misses = %d, want %d",
			colCold.Snapshot().Counters[obs.CounterRenderCacheMisses], db.Len())
	}

	colWarm := obs.NewCollector()
	warm, err := RenderWith(context.Background(), db, Options{Cache: store, Obs: colWarm})
	if err != nil {
		t.Fatal(err)
	}
	wc := colWarm.Snapshot().Counters
	if wc[obs.CounterRenderCacheHits] != int64(db.Len()) || wc[obs.CounterRenderCacheMisses] != 0 {
		t.Errorf("warm hits/misses = %d/%d, want %d/0",
			wc[obs.CounterRenderCacheHits], wc[obs.CounterRenderCacheMisses], db.Len())
	}
	// Cache hits skip template execution entirely — only the lab-level
	// files (never cached) execute templates on a fully warm build.
	if wc[obs.CounterTemplatesExecuted] >= colCold.Snapshot().Counters[obs.CounterTemplatesExecuted] {
		t.Error("warm build executed as many templates as cold")
	}
	if renderHash(t, cold) != renderHash(t, warm) {
		t.Error("warm render differs from cold render")
	}
	// A cache-disabled render is the ground truth both must match.
	plain, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	if renderHash(t, plain) != renderHash(t, cold) {
		t.Error("cached render differs from cache-disabled render")
	}
}

func TestRenderCacheInvalidatesOnTemplateChange(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	store := cache.NewMemory()
	if _, err := RenderWith(context.Background(), db, Options{Cache: store, Obs: obs.NewCollector()}); err != nil {
		t.Fatal(err)
	}

	// Swap one template's source: every quagga device must re-render.
	prev := ReplaceDeviceTemplates("quagga", append(
		[]DeviceTemplate{{RelPath: "etc/quagga/zebra.conf", When: "zebra",
			Template: tmpl.MustParse("quagga/zebra.conf", "! edited\nhostname ${node.zebra.hostname}\n")}},
		DeviceTemplates("quagga")[1:]...))
	defer ReplaceDeviceTemplates("quagga", prev)

	col := obs.NewCollector()
	fs, err := RenderWith(context.Background(), db, Options{Cache: store, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	c := col.Snapshot().Counters
	if c[obs.CounterRenderCacheMisses] != int64(db.Len()) || c[obs.CounterRenderCacheHits] != 0 {
		t.Errorf("post-template-edit hits/misses = %d/%d, want 0/%d",
			c[obs.CounterRenderCacheHits], c[obs.CounterRenderCacheMisses], db.Len())
	}
	if content, ok := fs.Read("localhost/netkit/r1/etc/quagga/zebra.conf"); !ok || content[:len("! edited")] != "! edited" {
		t.Errorf("edited template not reflected in output: %q", content)
	}
}

func TestSyntaxFingerprintTracksTemplateSet(t *testing.T) {
	base := SyntaxFingerprint("quagga")
	if base == SyntaxFingerprint("ios") {
		t.Error("distinct syntaxes share a fingerprint")
	}
	prev := ReplaceDeviceTemplates("quagga", DeviceTemplates("quagga")[1:])
	changed := SyntaxFingerprint("quagga")
	ReplaceDeviceTemplates("quagga", prev)
	if changed == base {
		t.Error("removing a template did not change the fingerprint")
	}
	if SyntaxFingerprint("quagga") != base {
		t.Error("restoring the template set did not restore the fingerprint")
	}
}
