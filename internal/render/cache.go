package render

import (
	"fmt"

	"autonetkit/internal/cache"
	"autonetkit/internal/nidb"
	"autonetkit/internal/obs"
)

// renderDigestTag versions the render digest space; bump it whenever
// renderDevice starts reading an input this key does not cover.
const renderDigestTag = "ank/render/v1"

// deviceRenderKey content-addresses one device's rendered file list: the
// device identity, its complete (post-finalisation) attribute tree and the
// fingerprint of its syntax's template set. renderDevice is a pure function
// of exactly these inputs, so an equal key guarantees byte-identical files.
//
// When the compile stage stamped the record with its input digest, the tree
// is addressed by that digest plus the tap attributes — the only state lab
// finalisation mutates after the digest was taken — instead of re-encoding
// the whole tree, which would otherwise dominate a fully warm render.
// Records without a digest fall back to canonical encoding; strict encoding
// means a device whose tree holds a value outside the codec's type set is
// simply uncacheable.
func deviceRenderKey(d *nidb.Device) (cache.Digest, error) {
	h := cache.NewHasher(renderDigestTag)
	h.Str(string(d.ID))
	h.Str(SyntaxFingerprint(d.GetString("syntax", "")))
	if d.Digest != ([32]byte{}) {
		h.Str("by-digest")
		h.Bytes(d.Digest[:])
		tap, _ := d.Get("tap")
		h.Value(tap)
		return h.Sum(), nil
	}
	data, err := cache.EncodeValue(d.Data)
	if err != nil {
		return cache.Digest{}, err
	}
	h.Str("by-data")
	h.Bytes(data)
	return h.Sum(), nil
}

// renderSetTag versions the whole-build render cache: the blob stored
// under a (model digest, template registry) key holds the complete
// rendered file tree, lab-level files included.
const renderSetTag = "ank/render-fs/v1"

// fileSetKey content-addresses a complete render of db: the compile
// stage's model digest (equal digests guarantee an identical database)
// plus the fingerprint of the whole template registry. ok is false when
// the database carries no model digest — compiled without the cache — in
// which case only the per-device tier applies.
func fileSetKey(db *nidb.DB) (cache.Digest, bool) {
	if db.ModelDigest == ([32]byte{}) {
		return cache.Digest{}, false
	}
	h := cache.NewHasher(renderSetTag)
	h.Bytes(db.ModelDigest[:])
	h.Str(RegistryFingerprint())
	return h.Sum(), true
}

// lookupFileSet restores a complete rendered tree into fs, or reports a
// miss. A hit counts one render-cache hit per device, matching the
// per-device tier's observable counter contract.
func lookupFileSet(db *nidb.DB, fs *FileSet, key cache.Digest, opts Options) bool {
	blob, ok := opts.Cache.Get(key)
	if !ok {
		return false
	}
	files, err := decodeFiles(blob)
	if err != nil {
		return false
	}
	n := int64(db.Len())
	opts.Obs.Add(obs.CounterCacheHits, n)
	opts.Obs.Add(obs.CounterRenderCacheHits, n)
	opts.Obs.Add(obs.CounterCacheBytes, int64(len(blob)))
	for _, f := range files {
		fs.Write(f.path, f.content)
		opts.Obs.Add(obs.CounterFilesRendered, 1)
		opts.Obs.Add(obs.CounterBytesWritten, int64(len(f.content)))
	}
	return true
}

// renderDeviceCached wraps renderDevice with the incremental cache: a hit
// decodes the stored file list, a miss renders and stores it. Lab-level
// files are never cached — they depend on the whole device set and are
// cheap relative to per-device templates.
func renderDeviceCached(d *nidb.Device, opts Options) ([]renderedFile, error) {
	if opts.Cache == nil {
		return renderDevice(d, opts.Obs)
	}
	key, err := deviceRenderKey(d)
	if err != nil {
		return renderDevice(d, opts.Obs)
	}
	if data, ok := opts.Cache.Get(key); ok {
		if files, derr := decodeFiles(data); derr == nil {
			opts.Obs.Add(obs.CounterCacheHits, 1)
			opts.Obs.Add(obs.CounterRenderCacheHits, 1)
			opts.Obs.Add(obs.CounterCacheBytes, int64(len(data)))
			return files, nil
		}
	}
	opts.Obs.Add(obs.CounterCacheMisses, 1)
	opts.Obs.Add(obs.CounterRenderCacheMisses, 1)
	files, err := renderDevice(d, opts.Obs)
	if err != nil {
		return nil, err
	}
	if data, eerr := encodeFiles(files); eerr == nil {
		opts.Cache.Put(key, data)
	}
	return files, nil
}

// encodeFiles flattens a file list into the cache codec's list form:
// alternating path and content strings.
func encodeFiles(files []renderedFile) ([]byte, error) {
	flat := make([]any, 0, 2*len(files))
	for _, f := range files {
		flat = append(flat, f.path, f.content)
	}
	return cache.EncodeValue(flat)
}

func decodeFiles(data []byte) ([]renderedFile, error) {
	v, err := cache.DecodeValue(data)
	if err != nil {
		return nil, err
	}
	flat, ok := v.([]any)
	if !ok || len(flat)%2 != 0 {
		return nil, fmt.Errorf("render: cached file list is malformed")
	}
	files := make([]renderedFile, 0, len(flat)/2)
	for i := 0; i < len(flat); i += 2 {
		path, pok := flat[i].(string)
		content, cok := flat[i+1].(string)
		if !pok || !cok {
			return nil, fmt.Errorf("render: cached file list holds non-strings")
		}
		files = append(files, renderedFile{path, content})
	}
	return files, nil
}
