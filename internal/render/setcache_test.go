package render

import (
	"context"
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/obs"
	"autonetkit/internal/tmpl"
)

// TestRenderFileSetCache drives the whole-build render tier: a database
// carrying a compile-stage model digest restores its complete file tree —
// lab-level files included — from one blob, and any template registration
// (device- or lab-level) invalidates that blob.
func TestRenderFileSetCache(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	db.ModelDigest = [32]byte{1} // as the cache-enabled compile stage would stamp it

	store := cache.NewMemory()
	colCold := obs.NewCollector()
	cold, err := RenderWith(context.Background(), db, Options{Cache: store, Obs: colCold})
	if err != nil {
		t.Fatal(err)
	}

	colWarm := obs.NewCollector()
	warm, err := RenderWith(context.Background(), db, Options{Cache: store, Obs: colWarm})
	if err != nil {
		t.Fatal(err)
	}
	wc := colWarm.Snapshot().Counters
	if wc[obs.CounterRenderCacheHits] != int64(db.Len()) || wc[obs.CounterRenderCacheMisses] != 0 {
		t.Errorf("warm hits/misses = %d/%d, want %d/0",
			wc[obs.CounterRenderCacheHits], wc[obs.CounterRenderCacheMisses], db.Len())
	}
	// The whole-build tier skips even the lab-level templates the
	// per-device tier always re-executes.
	if wc[obs.CounterTemplatesExecuted] != 0 {
		t.Errorf("warm build executed %d templates, want 0", wc[obs.CounterTemplatesExecuted])
	}
	if renderHash(t, cold) != renderHash(t, warm) {
		t.Error("restored file set differs from the rendered one")
	}

	// A lab-template registration must invalidate the stored tree — it
	// contains lab-level output.
	prevLab := labTemplates["netkit"]
	RegisterLabTemplate("netkit", labTemplate{
		RelPath:  "extra.conf",
		Template: tmpl.MustParse("lab-extra", "extra for ${lab.host}\n"),
	})
	defer func() {
		labTemplates["netkit"] = prevLab
		syntaxFPMu.Lock()
		registryFPCache = ""
		syntaxFPMu.Unlock()
	}()

	colEdit := obs.NewCollector()
	edited, err := RenderWith(context.Background(), db, Options{Cache: store, Obs: colEdit})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := edited.Read("localhost/netkit/extra.conf"); !ok {
		t.Error("lab-template registration did not reach the rendered tree")
	}
	ec := colEdit.Snapshot().Counters
	if ec[obs.CounterTemplatesExecuted] == 0 {
		t.Error("registry change did not invalidate the whole-build blob")
	}
}
