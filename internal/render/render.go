package render

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"autonetkit/internal/cache"
	"autonetkit/internal/nidb"
	"autonetkit/internal/obs"
)

// Options parameterises rendering.
type Options struct {
	// Workers bounds the per-device/per-lab render fan-out. 0 (the default)
	// uses GOMAXPROCS; 1 renders serially. Output is byte-identical at
	// every setting: each device (and each lab) renders into a private
	// ordered file list, and the lists are merged in database order.
	Workers int
	// Cache, when non-nil, is the incremental build store: devices whose
	// render key (attribute tree + template-set fingerprint) matches a
	// stored entry reuse their prior rendered files instead of executing
	// templates. Output is byte-identical at every cache state; lab-level
	// files always re-render.
	Cache *cache.Store
	// Obs, when non-nil, receives timing spans and work counters.
	Obs *obs.Collector
}

// Render pushes every device in the Resource Database through its syntax's
// template set, and every (host, platform) lab through the platform's
// lab-level templates, returning the complete configuration file tree.
func Render(db *nidb.DB) (*FileSet, error) {
	return RenderWith(context.Background(), db, Options{})
}

// RenderWith is Render with a worker pool and cancellation: the first
// template error (or ctx cancellation) cancels the remaining work.
func RenderWith(ctx context.Context, db *nidb.DB, opts Options) (*FileSet, error) {
	fs := NewFileSet()
	if err := renderInto(ctx, db, fs, opts); err != nil {
		return nil, err
	}
	return fs, nil
}

// RenderInto renders into an existing file set (so callers can merge
// several databases, e.g. cross-platform experiments).
func RenderInto(db *nidb.DB, fs *FileSet) error {
	return renderInto(context.Background(), db, fs, Options{})
}

// renderedFile is one output file from a render job, in emit order.
type renderedFile struct{ path, content string }

func renderInto(ctx context.Context, db *nidb.DB, fs *FileSet, opts Options) error {
	// Whole-build fast path: when the database carries a compile-stage
	// model digest, the complete file tree — lab-level output included —
	// is restored from (or stored as) a single blob, skipping per-device
	// key computation and template execution entirely.
	var setKey cache.Digest
	haveSetKey := false
	if opts.Cache != nil {
		if key, ok := fileSetKey(db); ok {
			if lookupFileSet(db, fs, key, opts) {
				return nil
			}
			setKey, haveSetKey = key, true
		}
	}

	devices := db.Devices()
	labKeys := db.LabKeys()

	// One job per device plus one per lab; each produces an ordered file
	// list that the merge below writes out in the same order the serial
	// renderer used (devices in database order, then labs in key order).
	jobs := make([]func() ([]renderedFile, error), 0, len(devices)+len(labKeys))
	for _, d := range devices {
		d := d
		jobs = append(jobs, func() ([]renderedFile, error) { return renderDeviceCached(d, opts) })
	}
	for _, key := range labKeys {
		key := key
		jobs = append(jobs, func() ([]renderedFile, error) { return renderLab(db, key, opts.Obs) })
	}

	span := opts.Obs.StartSpan("templates")
	results, err := runJobs(ctx, opts.Workers, jobs)
	span.End()
	if err != nil {
		return err
	}

	merge := opts.Obs.StartSpan("merge")
	defer merge.End()
	var flat []renderedFile
	for _, files := range results {
		for _, f := range files {
			fs.Write(f.path, f.content)
			opts.Obs.Add(obs.CounterFilesRendered, 1)
			opts.Obs.Add(obs.CounterBytesWritten, int64(len(f.content)))
		}
		if haveSetKey {
			flat = append(flat, files...)
		}
	}
	if haveSetKey {
		if blob, err := encodeFiles(flat); err == nil {
			opts.Cache.Put(setKey, blob)
		}
	}
	return nil
}

// runJobs fans jobs out across a bounded worker pool, returning results in
// job order. The first error wins; the rest are cancelled.
func runJobs(ctx context.Context, workers int, jobs []func() ([]renderedFile, error)) ([][]renderedFile, error) {
	out := make([][]renderedFile, len(jobs))
	n := workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(jobs) {
		n = len(jobs)
	}
	if n < 1 {
		n = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				files, err := jobs[i]()
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				out[i] = files
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// renderDevice produces one device's files in template-set order.
func renderDevice(d *nidb.Device, col *obs.Collector) ([]renderedFile, error) {
	syntax := d.GetString("syntax", "")
	set, ok := syntaxTemplates[syntax]
	if !ok {
		// Syntaxes without per-device files (e.g. cbgp) render only at
		// lab level.
		return nil, nil
	}
	dst := d.GetString("render.dst_folder", "")
	if dst == "" {
		return nil, fmt.Errorf("render: device %s has no render.dst_folder", d.ID)
	}
	var files []renderedFile
	for _, t := range set {
		if t.When != "" {
			if _, ok := d.Get(t.When); !ok {
				continue
			}
		}
		out, err := t.Template.Execute(map[string]any{"node": d.Data})
		if err != nil {
			return nil, fmt.Errorf("render: device %s, template %s: %w", d.ID, t.Template.Name(), err)
		}
		col.Add(obs.CounterTemplatesExecuted, 1)
		var path string
		if t.AtLabRoot {
			parent := dst
			if i := strings.LastIndex(dst, "/"); i >= 0 {
				parent = dst[:i]
			}
			path = parent + "/" + d.Hostname() + t.RelPath
		} else {
			path = dst + "/" + t.RelPath
		}
		files = append(files, renderedFile{path, out})
	}
	return files, nil
}

// renderLab produces one (host, platform) lab's files in template order.
func renderLab(db *nidb.DB, key string, col *obs.Collector) ([]renderedFile, error) {
	parts := strings.SplitN(key, "/", 2)
	host, platform := parts[0], parts[1]
	set, ok := labTemplates[platform]
	if !ok {
		return nil, nil
	}
	lab := db.Lab(host, platform)
	var nodes []any
	for _, d := range db.Devices() {
		if d.GetString("host", "") == host && d.GetString("platform", "") == platform {
			nodes = append(nodes, d.Data)
		}
	}
	ctx := map[string]any{"lab": lab, "nodes": nodes}
	var files []renderedFile
	for _, t := range set {
		out, err := t.Template.Execute(ctx)
		if err != nil {
			return nil, fmt.Errorf("render: lab %s, template %s: %w", key, t.Template.Name(), err)
		}
		col.Add(obs.CounterTemplatesExecuted, 1)
		files = append(files, renderedFile{host + "/" + platform + "/" + t.RelPath, out})
	}
	return files, nil
}

// DeviceConfig renders a single named template for one device — used by
// tests and by tooling that wants one config without the whole tree.
func DeviceConfig(d *nidb.Device, templateName string) (string, error) {
	syntax := d.GetString("syntax", "")
	for _, t := range syntaxTemplates[syntax] {
		if t.Template.Name() == templateName {
			return t.Template.Execute(map[string]any{"node": d.Data})
		}
	}
	return "", fmt.Errorf("render: syntax %q has no template %q", syntax, templateName)
}

// TemplateNames lists the template names registered for a syntax, sorted.
func TemplateNames(syntax string) []string {
	var out []string
	for _, t := range syntaxTemplates[syntax] {
		out = append(out, t.Template.Name())
	}
	sort.Strings(out)
	return out
}
