package render

import (
	"fmt"
	"sort"
	"strings"

	"autonetkit/internal/nidb"
)

// Render pushes every device in the Resource Database through its syntax's
// template set, and every (host, platform) lab through the platform's
// lab-level templates, returning the complete configuration file tree.
func Render(db *nidb.DB) (*FileSet, error) {
	fs := NewFileSet()
	if err := RenderInto(db, fs); err != nil {
		return nil, err
	}
	return fs, nil
}

// RenderInto renders into an existing file set (so callers can merge
// several databases, e.g. cross-platform experiments).
func RenderInto(db *nidb.DB, fs *FileSet) error {
	// Per-device files.
	for _, d := range db.Devices() {
		syntax := d.GetString("syntax", "")
		set, ok := syntaxTemplates[syntax]
		if !ok {
			// Syntaxes without per-device files (e.g. cbgp) render only at
			// lab level.
			continue
		}
		dst := d.GetString("render.dst_folder", "")
		if dst == "" {
			return fmt.Errorf("render: device %s has no render.dst_folder", d.ID)
		}
		for _, t := range set {
			if t.When != "" {
				if _, ok := d.Get(t.When); !ok {
					continue
				}
			}
			out, err := t.Template.Execute(map[string]any{"node": d.Data})
			if err != nil {
				return fmt.Errorf("render: device %s, template %s: %w", d.ID, t.Template.Name(), err)
			}
			var path string
			if t.AtLabRoot {
				parent := dst
				if i := strings.LastIndex(dst, "/"); i >= 0 {
					parent = dst[:i]
				}
				path = parent + "/" + d.Hostname() + t.RelPath
			} else {
				path = dst + "/" + t.RelPath
			}
			fs.Write(path, out)
		}
	}
	// Lab-level files.
	for _, key := range db.LabKeys() {
		parts := strings.SplitN(key, "/", 2)
		host, platform := parts[0], parts[1]
		set, ok := labTemplates[platform]
		if !ok {
			continue
		}
		lab := db.Lab(host, platform)
		var nodes []any
		for _, d := range db.Devices() {
			if d.GetString("host", "") == host && d.GetString("platform", "") == platform {
				nodes = append(nodes, d.Data)
			}
		}
		ctx := map[string]any{"lab": lab, "nodes": nodes}
		for _, t := range set {
			out, err := t.Template.Execute(ctx)
			if err != nil {
				return fmt.Errorf("render: lab %s, template %s: %w", key, t.Template.Name(), err)
			}
			fs.Write(host+"/"+platform+"/"+t.RelPath, out)
		}
	}
	return nil
}

// DeviceConfig renders a single named template for one device — used by
// tests and by tooling that wants one config without the whole tree.
func DeviceConfig(d *nidb.Device, templateName string) (string, error) {
	syntax := d.GetString("syntax", "")
	for _, t := range syntaxTemplates[syntax] {
		if t.Template.Name() == templateName {
			return t.Template.Execute(map[string]any{"node": d.Data})
		}
	}
	return "", fmt.Errorf("render: syntax %q has no template %q", syntax, templateName)
}

// TemplateNames lists the template names registered for a syntax, sorted.
func TemplateNames(syntax string) []string {
	var out []string
	for _, t := range syntaxTemplates[syntax] {
		out = append(out, t.Template.Name())
	}
	sort.Strings(out)
	return out
}
