// Package render pushes the Resource Database through the device-syntax
// template sets (paper §4.1, §5.5), producing the configuration file tree
// that deployment ships to the emulation hosts. Output is collected in an
// in-memory FileSet — the unit the §3.2 scale experiment measures (file
// count and total bytes) — which can also be written to disk.
package render

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileSet is an ordered, in-memory configuration file tree.
type FileSet struct {
	files map[string]string
	order []string
}

// NewFileSet returns an empty file set.
func NewFileSet() *FileSet {
	return &FileSet{files: map[string]string{}}
}

// Write stores content at a slash-separated relative path, replacing any
// previous content.
func (fs *FileSet) Write(path, content string) {
	if _, ok := fs.files[path]; !ok {
		fs.order = append(fs.order, path)
	}
	fs.files[path] = content
}

// Read returns the content at path.
func (fs *FileSet) Read(path string) (string, bool) {
	c, ok := fs.files[path]
	return c, ok
}

// Paths returns all file paths in write order.
func (fs *FileSet) Paths() []string {
	out := make([]string, len(fs.order))
	copy(out, fs.order)
	return out
}

// SortedPaths returns all file paths sorted lexically.
func (fs *FileSet) SortedPaths() []string {
	out := fs.Paths()
	sort.Strings(out)
	return out
}

// Len returns the number of files (the paper's "items").
func (fs *FileSet) Len() int { return len(fs.files) }

// TotalBytes returns the uncompressed size of all content.
func (fs *FileSet) TotalBytes() int {
	n := 0
	for _, c := range fs.files {
		n += len(c)
	}
	return n
}

// WithPrefix returns the subset of files under a path prefix (prefix is
// interpreted as a directory).
func (fs *FileSet) WithPrefix(prefix string) *FileSet {
	out := NewFileSet()
	p := strings.TrimSuffix(prefix, "/") + "/"
	for _, path := range fs.order {
		if strings.HasPrefix(path, p) {
			out.Write(path, fs.files[path])
		}
	}
	return out
}

// Merge copies all files of other into fs.
func (fs *FileSet) Merge(other *FileSet) {
	for _, p := range other.order {
		fs.Write(p, other.files[p])
	}
}

// MergeUnder copies all files of other into fs below a path prefix —
// the paper's §5.5 folder-copy semantics, used to drop user-supplied
// service trees (static files plus extra templates' output) into a device
// directory without writing code.
func (fs *FileSet) MergeUnder(prefix string, other *FileSet) {
	p := strings.TrimSuffix(prefix, "/")
	for _, path := range other.order {
		fs.Write(p+"/"+path, other.files[path])
	}
}

// FromDisk loads a directory tree into a file set (paths relative to dir,
// slash-separated) — the input side of the §5.5 folder-copy workflow.
func FromDisk(dir string) (*FileSet, error) {
	fs := NewFileSet()
	root := filepath.Clean(dir)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fs.Write(filepath.ToSlash(rel), string(b))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("render: reading %s: %w", dir, err)
	}
	return fs, nil
}

// WriteToDisk materialises the tree under dir, creating directories as
// needed.
func (fs *FileSet) WriteToDisk(dir string) error {
	for _, p := range fs.order {
		full := filepath.Join(dir, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return fmt.Errorf("render: mkdir for %s: %w", p, err)
		}
		if err := os.WriteFile(full, []byte(fs.files[p]), 0o644); err != nil {
			return fmt.Errorf("render: writing %s: %w", p, err)
		}
	}
	return nil
}

// String summarises the set.
func (fs *FileSet) String() string {
	return fmt.Sprintf("fileset(%d files, %d bytes)", fs.Len(), fs.TotalBytes())
}
