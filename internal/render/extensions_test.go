package render

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
)

// §7.3: routing-policy configlets stored on session edges pass through the
// compiler and appear verbatim in the rendered configuration.
func TestPolicyConfigletPassthrough(t *testing.T) {
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	in.AddNode("r1", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
	in.AddNode("r2", graph.Attrs{core.AttrASN: 2, core.AttrDeviceType: core.DeviceRouter})
	in.AddEdge("r1", "r2", graph.Attrs{"type": "physical"})
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	// The external-tool output (e.g. RtConfig) stored on the directed
	// session edge, after the eBGP overlay is built (§7.3).
	ebgp := anm.Overlay(design.OverlayEBGP)
	if err := ebgp.Edge("r1", "r2").Set("policy", "ip as-path access-list 1 permit ^2$"); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	conf, _ := fs.Read("localhost/netkit/r1/etc/quagga/bgpd.conf")
	if !strings.Contains(conf, "ip as-path access-list 1 permit ^2$") {
		t.Errorf("configlet not rendered:\n%s", conf)
	}
	if !strings.Contains(conf, "! policy configlet for") {
		t.Errorf("configlet marker missing:\n%s", conf)
	}
	// The other side has no policy and no marker.
	conf2, _ := fs.Read("localhost/netkit/r2/etc/quagga/bgpd.conf")
	if strings.Contains(conf2, "configlet") {
		t.Errorf("policy leaked to the wrong side:\n%s", conf2)
	}
}

// §5.5: user service folders are copied under a device directory without
// writing code.
func TestMergeUnderFolderCopy(t *testing.T) {
	fs := NewFileSet()
	fs.Write("localhost/netkit/r1/etc/quagga/zebra.conf", "hostname r1\n")

	service := NewFileSet()
	service.Write("etc/bind/named.conf", "options {};\n")
	service.Write("etc/bind/zones/as1.lab", "$ORIGIN as1.lab.\n")

	fs.MergeUnder("localhost/netkit/r1", service)
	if got, ok := fs.Read("localhost/netkit/r1/etc/bind/named.conf"); !ok || got != "options {};\n" {
		t.Errorf("named.conf = %q %v", got, ok)
	}
	if _, ok := fs.Read("localhost/netkit/r1/etc/bind/zones/as1.lab"); !ok {
		t.Error("nested service file missing")
	}
	if fs.Len() != 3 {
		t.Errorf("files = %d", fs.Len())
	}
}

func TestFromDisk(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "etc", "bind"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "etc", "bind", "named.conf"), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "top.txt"), []byte("y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := FromDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 2 {
		t.Fatalf("files = %d: %v", fs.Len(), fs.Paths())
	}
	if got, _ := fs.Read("etc/bind/named.conf"); got != "x\n" {
		t.Errorf("content = %q", got)
	}
	if _, err := FromDisk(dir + "/missing"); err == nil {
		t.Error("missing dir accepted")
	}
}

// Round trip: a service tree read from disk, merged under a device, and
// written back out lands in the right place.
func TestServiceFolderRoundTrip(t *testing.T) {
	src := t.TempDir()
	if err := os.WriteFile(filepath.Join(src, "rpki.conf"), []byte("trust-anchor true\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	service, err := FromDisk(src)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFileSet()
	fs.MergeUnder("localhost/netkit/ca1", service)
	dst := t.TempDir()
	if err := fs.WriteToDisk(dst); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dst, "localhost", "netkit", "ca1", "rpki.conf"))
	if err != nil || string(b) != "trust-anchor true\n" {
		t.Errorf("round trip: %q %v", b, err)
	}
}
