package render

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/nidb"
)

// buildDB compiles the Fig. 5 network for the given platform/syntax.
func buildDB(t *testing.T, platform, syntax string) *nidb.DB {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		in.AddNode(n.id, graph.Attrs{
			core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter,
			core.AttrPlatform: platform, core.AttrSyntax: syntax,
		})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		in.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	if err := design.BuildAll(anm, design.Options{ISIS: syntax == "quagga"}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFileSetBasics(t *testing.T) {
	fs := NewFileSet()
	fs.Write("a/b.txt", "hello")
	fs.Write("a/c.txt", "world")
	fs.Write("a/b.txt", "hello2") // replace, not duplicate
	if fs.Len() != 2 {
		t.Errorf("len = %d", fs.Len())
	}
	if c, ok := fs.Read("a/b.txt"); !ok || c != "hello2" {
		t.Errorf("read = %q %v", c, ok)
	}
	if fs.TotalBytes() != len("hello2")+len("world") {
		t.Errorf("bytes = %d", fs.TotalBytes())
	}
	sub := fs.WithPrefix("a")
	if sub.Len() != 2 {
		t.Errorf("prefix len = %d", sub.Len())
	}
	if fs.WithPrefix("z").Len() != 0 {
		t.Error("wrong prefix matched")
	}
	other := NewFileSet()
	other.Write("x/y.txt", "z")
	fs.Merge(other)
	if fs.Len() != 3 {
		t.Error("merge failed")
	}
	sorted := fs.SortedPaths()
	if sorted[0] != "a/b.txt" || sorted[2] != "x/y.txt" {
		t.Errorf("sorted = %v", sorted)
	}
}

func TestFileSetWriteToDisk(t *testing.T) {
	fs := NewFileSet()
	fs.Write("sub/dir/file.conf", "content\n")
	dir := t.TempDir()
	if err := fs.WriteToDisk(dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "sub", "dir", "file.conf"))
	if err != nil || string(b) != "content\n" {
		t.Errorf("disk content = %q, %v", b, err)
	}
}

func TestRenderQuaggaTree(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	// Each of 5 routers: zebra, ospfd, bgpd, isisd, daemons, startup = 6
	// files, plus lab.conf.
	if fs.Len() != 31 {
		t.Errorf("files = %d, want 31: %v", fs.Len(), fs.SortedPaths())
	}
	for _, want := range []string{
		"localhost/netkit/r1/etc/quagga/zebra.conf",
		"localhost/netkit/r1/etc/quagga/ospfd.conf",
		"localhost/netkit/r1/etc/quagga/bgpd.conf",
		"localhost/netkit/r1/etc/quagga/daemons",
		"localhost/netkit/r1.startup",
		"localhost/netkit/lab.conf",
	} {
		if _, ok := fs.Read(want); !ok {
			t.Errorf("missing %s", want)
		}
	}
}

// E4: the §4.1 template against the compiled NIDB yields the §6.1-shaped
// config: hostname/password header, per-interface ospf cost, router ospf
// with one network-area line per attached prefix.
func TestGoldenOspfdShape(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	conf, ok := fs.Read("localhost/netkit/r1/etc/quagga/ospfd.conf")
	if !ok {
		t.Fatal("ospfd.conf missing")
	}
	lines := strings.Split(strings.TrimRight(conf, "\n"), "\n")
	if lines[0] != "hostname r1" || lines[1] != "password 1234" {
		t.Errorf("header = %q %q", lines[0], lines[1])
	}
	if !strings.Contains(conf, "interface eth0\n  ip ospf cost 1\n") {
		t.Errorf("interface stanza missing:\n%s", conf)
	}
	if !strings.Contains(conf, "router ospf\n") {
		t.Error("router ospf missing")
	}
	// r1: 2 intra-AS networks + loopback = 3 network lines, area 0.
	nets := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "  network ") && strings.HasSuffix(l, " area 0") {
			nets++
		}
	}
	if nets != 3 {
		t.Errorf("network lines = %d, want 3\n%s", nets, conf)
	}
}

func TestGoldenBgpd(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	conf, _ := fs.Read("localhost/netkit/r3/etc/quagga/bgpd.conf")
	if !strings.Contains(conf, "router bgp 1\n") {
		t.Errorf("router bgp missing:\n%s", conf)
	}
	if !strings.Contains(conf, "remote-as 2") {
		t.Error("eBGP neighbor missing")
	}
	if !strings.Contains(conf, "update-source lo") {
		t.Error("iBGP update-source missing")
	}
	if !strings.Contains(conf, "network 192.168.") {
		t.Error("advertised network missing")
	}
	if strings.Contains(conf, "route-reflector-client") {
		t.Error("full mesh must not emit rr clients")
	}
}

func TestGoldenDaemons(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	fs, _ := Render(db)
	conf, _ := fs.Read("localhost/netkit/r1/etc/quagga/daemons")
	want := "zebra=yes\nospfd=yes\nbgpd=yes\nisisd=yes\n"
	if conf != want {
		t.Errorf("daemons = %q, want %q", conf, want)
	}
}

func TestGoldenStartup(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	fs, _ := Render(db)
	conf, _ := fs.Read("localhost/netkit/r1.startup")
	if !strings.Contains(conf, "/sbin/ifconfig eth0 192.168.") {
		t.Errorf("startup missing ifconfig:\n%s", conf)
	}
	if !strings.Contains(conf, "netmask 255.255.255.252") {
		t.Error("p2p netmask wrong")
	}
	if !strings.Contains(conf, "/sbin/ifconfig lo:1 10.0.0.") {
		t.Error("loopback alias missing")
	}
	if !strings.Contains(conf, "/etc/init.d/zebra start") {
		t.Error("zebra start missing")
	}
}

func TestGoldenLabConf(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	fs, _ := Render(db)
	conf, _ := fs.Read("localhost/netkit/lab.conf")
	if !strings.Contains(conf, `LAB_DESCRIPTION="autonetkit generated lab (5 machines)"`) {
		t.Errorf("description missing:\n%s", conf)
	}
	// Machine-to-collision-domain bindings.
	if !strings.Contains(conf, "r1[eth0]=cd_r1_r2") {
		t.Errorf("machine binding missing:\n%s", conf)
	}
	// TAP management line: r1 has 2 data ifaces -> tap on eth2.
	if !strings.Contains(conf, "r1[eth2]=tap,172.16.0.1,172.16.0.2") {
		t.Errorf("tap line missing:\n%s", conf)
	}
}

func TestRenderIOS(t *testing.T) {
	db := buildDB(t, "dynagen", "ios")
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	conf, ok := fs.Read("localhost/dynagen/r1.cfg")
	if !ok {
		t.Fatalf("ios config missing: %v", fs.SortedPaths())
	}
	if !strings.Contains(conf, "hostname r1") {
		t.Error("hostname missing")
	}
	if !strings.Contains(conf, "interface f0/0") {
		t.Error("IOS interface naming missing")
	}
	// IOS network statements use wildcard masks.
	if !strings.Contains(conf, " 0.0.0.3 area 0") {
		t.Errorf("wildcard mask missing:\n%s", conf)
	}
	if !strings.Contains(conf, "ip address 192.168.") || !strings.Contains(conf, " 255.255.255.252") {
		t.Error("dotted netmask missing")
	}
	lab, _ := fs.Read("localhost/dynagen/lab.net")
	if !strings.Contains(lab, "[[ROUTER r1]]") {
		t.Errorf("lab.net missing router:\n%s", lab)
	}
}

func TestRenderJunos(t *testing.T) {
	db := buildDB(t, "junosphere", "junos")
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	conf, ok := fs.Read("localhost/junosphere/r1.conf")
	if !ok {
		t.Fatalf("junos config missing: %v", fs.SortedPaths())
	}
	if !strings.Contains(conf, "host-name r1;") {
		t.Error("host-name missing")
	}
	if !strings.Contains(conf, "em0 {") {
		t.Error("em interface missing")
	}
	if !strings.Contains(conf, "autonomous-system 1;") {
		t.Error("AS missing")
	}
	vmm, _ := fs.Read("localhost/junosphere/topology.vmm")
	if !strings.Contains(vmm, `vm "r1"`) {
		t.Error("vmm missing vm")
	}
}

func TestRenderCBGP(t *testing.T) {
	db := buildDB(t, "cbgp", "cbgp")
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	cli, ok := fs.Read("localhost/cbgp/lab.cli")
	if !ok {
		t.Fatalf("lab.cli missing: %v", fs.SortedPaths())
	}
	if !strings.Contains(cli, "net add node 10.0.0.1") {
		t.Errorf("node missing:\n%s", cli)
	}
	if !strings.Contains(cli, "bgp add router 1 10.0.0.1") {
		t.Error("bgp router missing")
	}
	if !strings.Contains(cli, "sim run") {
		t.Error("sim run missing")
	}
	// cbgp produces only the lab file.
	if fs.Len() != 1 {
		t.Errorf("files = %d, want 1", fs.Len())
	}
}

// Ablation A3: rendering the same network twice is byte identical.
func TestRenderDeterministic(t *testing.T) {
	fs1, err := Render(buildDB(t, "netkit", "quagga"))
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Render(buildDB(t, "netkit", "quagga"))
	if err != nil {
		t.Fatal(err)
	}
	if fs1.Len() != fs2.Len() {
		t.Fatal("file counts differ")
	}
	for _, p := range fs1.Paths() {
		a, _ := fs1.Read(p)
		b, ok := fs2.Read(p)
		if !ok || a != b {
			t.Errorf("file %s differs across runs", p)
		}
	}
}

func TestRouteReflectorRendered(t *testing.T) {
	anm := core.NewANM()
	in, _ := anm.AddOverlay(core.OverlayInput)
	for _, id := range []graph.ID{"hub", "l1", "l2"} {
		in.AddNode(id, graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
	}
	in.AddEdge("hub", "l1")
	in.AddEdge("hub", "l2")
	if err := design.BuildAll(anm, design.Options{RouteReflectors: true, RROptions: design.RROptions{PerAS: 1}}); err != nil {
		t.Fatal(err)
	}
	alloc, _ := ipalloc.NewDefault().Allocate(anm)
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Render(db)
	if err != nil {
		t.Fatal(err)
	}
	conf, _ := fs.Read("localhost/netkit/hub/etc/quagga/bgpd.conf")
	if strings.Count(conf, "route-reflector-client") != 2 {
		t.Errorf("hub should have 2 rr clients:\n%s", conf)
	}
}

func TestDeviceConfigHelper(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	out, err := DeviceConfig(db.Device("r1"), "quagga/ospfd.conf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "router ospf") {
		t.Error("helper output wrong")
	}
	if _, err := DeviceConfig(db.Device("r1"), "nope"); err == nil {
		t.Error("unknown template accepted")
	}
	if names := TemplateNames("quagga"); len(names) != 6 {
		t.Errorf("quagga templates = %v", names)
	}
}

func TestRenderErrorOnMissingDstFolder(t *testing.T) {
	db := nidb.New()
	d := db.AddDevice("r1")
	d.MustSet("syntax", "quagga")
	d.MustSet("zebra.hostname", "r1")
	if _, err := Render(db); err == nil {
		t.Error("missing dst_folder accepted")
	}
}

func TestRenderErrorNamesTemplate(t *testing.T) {
	// A device tree missing a value the template requires: the error names
	// the device and the template for quick diagnosis.
	db := nidb.New()
	d := db.AddDevice("broken")
	d.MustSet("syntax", "quagga")
	d.MustSet("render.dst_folder", "localhost/netkit/broken")
	d.MustSet("zebra.hostname", "broken")
	// zebra.password missing -> zebra.conf template fails.
	_, err := Render(db)
	if err == nil {
		t.Fatal("missing template value accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "broken") || !strings.Contains(msg, "zebra.conf") {
		t.Errorf("error lacks context: %v", err)
	}
}

// The worker pool must not change output: RenderWith at Workers=1 and
// Workers=8 produces identical paths and contents in identical order.
func TestRenderWithWorkersDeterministic(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	serial, err := RenderWith(context.Background(), db, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RenderWith(context.Background(), db, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sp, pp := serial.Paths(), parallel.Paths()
	if len(sp) == 0 || len(sp) != len(pp) {
		t.Fatalf("path counts differ: %d vs %d", len(sp), len(pp))
	}
	for i := range sp {
		if sp[i] != pp[i] {
			t.Fatalf("path order differs at %d: %s vs %s", i, sp[i], pp[i])
		}
		sc, _ := serial.Read(sp[i])
		pc, _ := parallel.Read(pp[i])
		if sc != pc {
			t.Errorf("%s content differs across worker counts", sp[i])
		}
	}
}

// A cancelled context aborts the fan-out with the context's error.
func TestRenderWithCancelledContext(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RenderWith(ctx, db, Options{Workers: 4}); err == nil {
		t.Fatal("cancelled render succeeded")
	}
}

// A broken device surfaces a render error instead of a partial tree.
func TestRenderWithErrorWins(t *testing.T) {
	db := buildDB(t, "netkit", "quagga")
	// Remove the render metadata from one device to force a failure.
	d := db.Devices()[2]
	delete(d.Data, "render")
	_, err := RenderWith(context.Background(), db, Options{Workers: 8})
	if err == nil || !strings.Contains(err.Error(), "dst_folder") {
		t.Fatalf("got %v, want dst_folder error", err)
	}
}
