package topoio

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"autonetkit/internal/graph"
)

// GraphML support (the paper's primary interchange format, §4.2). Attribute
// keys are declared with <key> elements carrying a name and type; node and
// edge <data> elements reference them. Values are decoded to Go types per
// the declared attr.type (int/long → int, float/double → float64,
// boolean → bool, else string).

type xmlGraphML struct {
	XMLName xml.Name   `xml:"graphml"`
	Keys    []xmlKey   `xml:"key"`
	Graphs  []xmlGraph `xml:"graph"`
}

type xmlKey struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
	AttrType string `xml:"attr.type,attr"`
}

type xmlGraph struct {
	EdgeDefault string    `xml:"edgedefault,attr"`
	Data        []xmlData `xml:"data"`
	Nodes       []xmlNode `xml:"node"`
	Edges       []xmlEdge `xml:"edge"`
}

type xmlNode struct {
	ID   string    `xml:"id,attr"`
	Data []xmlData `xml:"data"`
}

type xmlEdge struct {
	Source string    `xml:"source,attr"`
	Target string    `xml:"target,attr"`
	Data   []xmlData `xml:"data"`
}

type xmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// ReadGraphML parses a GraphML document into a graph.
func ReadGraphML(r io.Reader) (*graph.Graph, error) {
	var doc xmlGraphML
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("topoio: parsing GraphML: %w", err)
	}
	if len(doc.Graphs) == 0 {
		return nil, fmt.Errorf("topoio: GraphML document has no <graph>")
	}
	gx := doc.Graphs[0]
	var g *graph.Graph
	if gx.EdgeDefault == "directed" {
		g = graph.NewDirected()
	} else {
		g = graph.New()
	}
	keys := map[string]xmlKey{}
	for _, k := range doc.Keys {
		keys[k.ID] = k
	}
	decode := func(d xmlData) (string, any, error) {
		k, ok := keys[d.Key]
		if !ok {
			// Undeclared key: keep raw id and string value.
			return d.Key, strings.TrimSpace(d.Value), nil
		}
		v, err := decodeTyped(strings.TrimSpace(d.Value), k.AttrType)
		if err != nil {
			return "", nil, fmt.Errorf("topoio: key %q (%s): %w", k.AttrName, k.AttrType, err)
		}
		name := k.AttrName
		if name == "" {
			name = k.ID
		}
		return name, v, nil
	}
	for _, d := range gx.Data {
		name, v, err := decode(d)
		if err != nil {
			return nil, err
		}
		g.Set(name, v)
	}
	for _, nx := range gx.Nodes {
		attrs := graph.Attrs{}
		for _, d := range nx.Data {
			name, v, err := decode(d)
			if err != nil {
				return nil, err
			}
			attrs[name] = v
		}
		g.AddNode(graph.ID(nx.ID), attrs)
	}
	for _, ex := range gx.Edges {
		if !g.HasNode(graph.ID(ex.Source)) || !g.HasNode(graph.ID(ex.Target)) {
			return nil, fmt.Errorf("topoio: edge %s-%s references undeclared node", ex.Source, ex.Target)
		}
		attrs := graph.Attrs{}
		for _, d := range ex.Data {
			name, v, err := decode(d)
			if err != nil {
				return nil, err
			}
			attrs[name] = v
		}
		g.AddEdge(graph.ID(ex.Source), graph.ID(ex.Target), attrs)
	}
	return g, nil
}

func decodeTyped(s, typ string) (any, error) {
	switch typ {
	case "int", "long", "integer":
		if s == "" {
			return 0, nil
		}
		return strconv.Atoi(s)
	case "float", "double":
		if s == "" {
			return 0.0, nil
		}
		return strconv.ParseFloat(s, 64)
	case "boolean", "bool":
		if s == "" {
			return false, nil
		}
		return strconv.ParseBool(s)
	default:
		return s, nil
	}
}

// WriteGraphML serialises a graph as GraphML, declaring one key per
// attribute name with a type inferred from the first value seen.
func WriteGraphML(w io.Writer, g *graph.Graph) error {
	nodeAttrs := []graph.Attrs{}
	for _, n := range g.Nodes() {
		nodeAttrs = append(nodeAttrs, n.Attrs())
	}
	edgeAttrs := []graph.Attrs{}
	for _, e := range g.Edges() {
		edgeAttrs = append(edgeAttrs, e.Attrs())
	}

	doc := xmlGraphML{}
	keyIDs := map[string]string{} // "for/name" -> key id
	addKeys := func(forWhat string, maps []graph.Attrs) {
		names := attrKeys(maps)
		for _, name := range names {
			typ := "string"
			for _, m := range maps {
				if v, ok := m[name]; ok {
					typ = inferType(v)
					break
				}
			}
			id := fmt.Sprintf("d%d", len(doc.Keys))
			doc.Keys = append(doc.Keys, xmlKey{ID: id, For: forWhat, AttrName: name, AttrType: typ})
			keyIDs[forWhat+"/"+name] = id
		}
	}
	addKeys("node", nodeAttrs)
	addKeys("edge", edgeAttrs)
	var graphData []graph.Attrs
	if len(g.Attrs()) > 0 {
		graphData = append(graphData, g.Attrs())
		addKeys("graph", graphData)
	}

	gx := xmlGraph{EdgeDefault: "undirected"}
	if g.Directed() {
		gx.EdgeDefault = "directed"
	}
	encodeData := func(forWhat string, attrs graph.Attrs) []xmlData {
		var out []xmlData
		names := attrKeys([]graph.Attrs{attrs})
		for _, name := range names {
			out = append(out, xmlData{Key: keyIDs[forWhat+"/"+name], Value: encodeValue(attrs[name])})
		}
		return out
	}
	gx.Data = encodeData("graph", g.Attrs())
	for _, n := range g.Nodes() {
		gx.Nodes = append(gx.Nodes, xmlNode{ID: string(n.ID()), Data: encodeData("node", n.Attrs())})
	}
	for _, e := range g.Edges() {
		gx.Edges = append(gx.Edges, xmlEdge{Source: string(e.Src()), Target: string(e.Dst()), Data: encodeData("edge", e.Attrs())})
	}
	doc.Graphs = []xmlGraph{gx}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("topoio: writing GraphML: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func inferType(v any) string {
	switch v.(type) {
	case int, int64:
		return "int"
	case float64, float32:
		return "double"
	case bool:
		return "boolean"
	default:
		return "string"
	}
}

func encodeValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// sortedAttrNames is a helper for tests wanting deterministic key order.
func sortedAttrNames(a graph.Attrs) []string {
	out := make([]string, 0, len(a))
	for k := range a {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
