package topoio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"autonetkit/internal/graph"
)

// GML support: the Internet Topology Zoo publishes its models in GML
// (§3.2 uses the Zoo's European interconnect model). GML is a nested
// key-value format:
//
//	graph [
//	  directed 0
//	  node [ id 0 label "r1" asn 1 ]
//	  edge [ source 0 target 1 LinkSpeed "10" ]
//	]

type gmlValue struct {
	scalar any        // string / int / float64 when leaf
	list   []gmlEntry // nested [ ... ] block
	isList bool
}

type gmlEntry struct {
	key string
	val gmlValue
}

type gmlLexer struct {
	toks []string
	pos  int
}

func lexGML(r io.Reader) ([]string, error) {
	var toks []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		for len(line) > 0 {
			line = strings.TrimLeft(line, " \t\r")
			if line == "" {
				break
			}
			switch line[0] {
			case '"':
				end := strings.Index(line[1:], `"`)
				if end < 0 {
					return nil, fmt.Errorf("topoio: GML: unterminated string in %q", line)
				}
				toks = append(toks, line[:end+2])
				line = line[end+2:]
			case '[', ']':
				toks = append(toks, string(line[0]))
				line = line[1:]
			default:
				n := strings.IndexAny(line, " \t\r[]")
				if n < 0 {
					n = len(line)
				}
				toks = append(toks, line[:n])
				line = line[n:]
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topoio: reading GML: %w", err)
	}
	return toks, nil
}

func (l *gmlLexer) parseBlock() ([]gmlEntry, error) {
	var out []gmlEntry
	for l.pos < len(l.toks) {
		key := l.toks[l.pos]
		if key == "]" {
			l.pos++
			return out, nil
		}
		l.pos++
		if l.pos >= len(l.toks) {
			return nil, fmt.Errorf("topoio: GML: key %q has no value", key)
		}
		tok := l.toks[l.pos]
		if tok == "]" {
			return nil, fmt.Errorf("topoio: GML: key %q has no value", key)
		}
		if tok == "[" {
			l.pos++
			inner, err := l.parseBlock()
			if err != nil {
				return nil, err
			}
			out = append(out, gmlEntry{key, gmlValue{list: inner, isList: true}})
			continue
		}
		l.pos++
		out = append(out, gmlEntry{key, gmlValue{scalar: gmlScalar(tok)}})
	}
	return out, nil
}

func gmlScalar(tok string) any {
	if strings.HasPrefix(tok, `"`) && strings.HasSuffix(tok, `"`) && len(tok) >= 2 {
		return tok[1 : len(tok)-1]
	}
	if i, err := strconv.Atoi(tok); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f
	}
	return tok
}

// ReadGML parses a GML document. Node IDs come from the "label" attribute
// when present (the Zoo convention), otherwise the numeric id.
func ReadGML(r io.Reader) (*graph.Graph, error) {
	toks, err := lexGML(r)
	if err != nil {
		return nil, err
	}
	lex := &gmlLexer{toks: toks}
	top, err := lex.parseBlock()
	if err != nil {
		return nil, err
	}
	var groot []gmlEntry
	for _, e := range top {
		if e.key == "graph" && e.val.isList {
			groot = e.val.list
			break
		}
	}
	if groot == nil {
		return nil, fmt.Errorf("topoio: GML: no graph block")
	}
	directed := false
	for _, e := range groot {
		if e.key == "directed" {
			if i, ok := e.val.scalar.(int); ok && i == 1 {
				directed = true
			}
		}
	}
	var g *graph.Graph
	if directed {
		g = graph.NewDirected()
	} else {
		g = graph.New()
	}
	idToLabel := map[string]graph.ID{}
	for _, e := range groot {
		switch {
		case e.key == "node" && e.val.isList:
			attrs := graph.Attrs{}
			var rawID, label string
			for _, f := range e.val.list {
				switch f.key {
				case "id":
					rawID = fmt.Sprint(f.val.scalar)
				case "label":
					label = fmt.Sprint(f.val.scalar)
				default:
					if !f.val.isList {
						attrs[f.key] = f.val.scalar
					}
				}
			}
			if rawID == "" && label == "" {
				return nil, fmt.Errorf("topoio: GML: node with neither id nor label")
			}
			id := graph.ID(label)
			if label == "" {
				id = graph.ID(rawID)
			}
			if rawID != "" {
				idToLabel[rawID] = id
			}
			if g.HasNode(id) {
				// Zoo files occasionally duplicate labels; disambiguate.
				id = graph.ID(fmt.Sprintf("%s_%s", id, rawID))
				idToLabel[rawID] = id
			}
			attrs["label"] = string(id)
			g.AddNode(id, attrs)
		case e.key == "edge" && e.val.isList:
			attrs := graph.Attrs{}
			var src, dst string
			for _, f := range e.val.list {
				switch f.key {
				case "source":
					src = fmt.Sprint(f.val.scalar)
				case "target":
					dst = fmt.Sprint(f.val.scalar)
				default:
					if !f.val.isList {
						attrs[f.key] = f.val.scalar
					}
				}
			}
			sid, ok := idToLabel[src]
			if !ok {
				return nil, fmt.Errorf("topoio: GML: edge source %q undeclared", src)
			}
			did, ok := idToLabel[dst]
			if !ok {
				return nil, fmt.Errorf("topoio: GML: edge target %q undeclared", dst)
			}
			g.AddEdge(sid, did, attrs)
		case !e.val.isList && e.key != "directed":
			g.Set(e.key, e.val.scalar)
		}
	}
	return g, nil
}

// WriteGML serialises the graph as GML, numbering nodes in insertion order.
func WriteGML(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph [")
	if g.Directed() {
		fmt.Fprintln(bw, "  directed 1")
	}
	for _, k := range sortedAttrNames(g.Attrs()) {
		fmt.Fprintf(bw, "  %s %s\n", k, gmlEncode(g.Get(k)))
	}
	ids := map[graph.ID]int{}
	for i, n := range g.Nodes() {
		ids[n.ID()] = i
		fmt.Fprintln(bw, "  node [")
		fmt.Fprintf(bw, "    id %d\n", i)
		fmt.Fprintf(bw, "    label %q\n", string(n.ID()))
		for _, k := range sortedAttrNames(n.Attrs()) {
			if k == "label" {
				continue
			}
			fmt.Fprintf(bw, "    %s %s\n", k, gmlEncode(n.Get(k)))
		}
		fmt.Fprintln(bw, "  ]")
	}
	for _, e := range g.Edges() {
		fmt.Fprintln(bw, "  edge [")
		fmt.Fprintf(bw, "    source %d\n", ids[e.Src()])
		fmt.Fprintf(bw, "    target %d\n", ids[e.Dst()])
		for _, k := range sortedAttrNames(e.Attrs()) {
			fmt.Fprintf(bw, "    %s %s\n", k, gmlEncode(e.Get(k)))
		}
		fmt.Fprintln(bw, "  ]")
	}
	fmt.Fprintln(bw, "]")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("topoio: writing GML: %w", err)
	}
	return nil
}

func gmlEncode(v any) string {
	switch x := v.(type) {
	case int:
		return strconv.Itoa(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "1"
		}
		return "0"
	default:
		return fmt.Sprintf("%q", fmt.Sprint(v))
	}
}
