package topoio

import (
	"bytes"
	"strings"
	"testing"

	"autonetkit/internal/graph"
)

func sampleGraph() *graph.Graph {
	g := graph.New()
	g.Set("name", "sample")
	g.AddNode("r1", graph.Attrs{"asn": 1, "device_type": "router", "weight": 1.5, "core": true})
	g.AddNode("r2", graph.Attrs{"asn": 1})
	g.AddNode("r3", graph.Attrs{"asn": 2})
	g.AddEdge("r1", "r2", graph.Attrs{"type": "physical", "cost": 10})
	g.AddEdge("r2", "r3", graph.Attrs{"type": "physical"})
	return g
}

func TestGraphMLRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteGraphML(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraphML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 2 {
		t.Fatalf("round trip lost structure: %v", got)
	}
	r1 := got.Node("r1")
	if r1.Get("asn") != 1 {
		t.Errorf("asn = %#v, want int 1", r1.Get("asn"))
	}
	if r1.Get("weight") != 1.5 {
		t.Errorf("weight = %#v, want 1.5", r1.Get("weight"))
	}
	if r1.Get("core") != true {
		t.Errorf("core = %#v, want true", r1.Get("core"))
	}
	if r1.Get("device_type") != "router" {
		t.Errorf("device_type = %#v", r1.Get("device_type"))
	}
	if got.Edge("r1", "r2").Get("cost") != 10 {
		t.Errorf("edge cost = %#v", got.Edge("r1", "r2").Get("cost"))
	}
	if got.Get("name") != "sample" {
		t.Errorf("graph attr = %#v", got.Get("name"))
	}
	if got.Directed() {
		t.Error("undirected graph became directed")
	}
}

func TestGraphMLDirected(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge("a", "b")
	var buf bytes.Buffer
	if err := WriteGraphML(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraphML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Directed() || got.HasEdge("b", "a") {
		t.Error("directedness lost")
	}
}

func TestGraphMLHandEdited(t *testing.T) {
	// The kind of file a yEd user saves (paper §3.1 workflow).
	src := `<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="d0" for="node" attr.name="asn" attr.type="int"/>
  <key id="d1" for="node" attr.name="device_type" attr.type="string"/>
  <graph edgedefault="undirected">
    <node id="as1r1"><data key="d0">1</data><data key="d1">router</data></node>
    <node id="as20r1"><data key="d0">20</data></node>
    <edge source="as1r1" target="as20r1"/>
  </graph>
</graphml>`
	g, err := ReadGraphML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("as1r1").Get("asn") != 1 || g.Node("as20r1").Get("asn") != 20 {
		t.Errorf("attrs wrong: %v %v", g.Node("as1r1").Attrs(), g.Node("as20r1").Attrs())
	}
	if !g.HasEdge("as1r1", "as20r1") {
		t.Error("edge missing")
	}
}

func TestGraphMLErrors(t *testing.T) {
	if _, err := ReadGraphML(strings.NewReader("not xml at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadGraphML(strings.NewReader(`<graphml></graphml>`)); err == nil {
		t.Error("missing graph accepted")
	}
	bad := `<graphml><graph edgedefault="undirected"><edge source="x" target="y"/></graph></graphml>`
	if _, err := ReadGraphML(strings.NewReader(bad)); err == nil {
		t.Error("dangling edge accepted")
	}
	badInt := `<graphml><key id="d0" for="node" attr.name="asn" attr.type="int"/>
<graph edgedefault="undirected"><node id="a"><data key="d0">xyz</data></node></graph></graphml>`
	if _, err := ReadGraphML(strings.NewReader(badInt)); err == nil {
		t.Error("unparseable int accepted")
	}
}

func TestGMLRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteGML(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 2 {
		t.Fatalf("structure lost: %v", got)
	}
	if got.Node("r1").Get("asn") != 1 {
		t.Errorf("asn = %#v", got.Node("r1").Get("asn"))
	}
	if got.Node("r1").Get("weight") != 1.5 {
		t.Errorf("weight = %#v", got.Node("r1").Get("weight"))
	}
	if !got.HasEdge("r2", "r3") {
		t.Error("edge lost")
	}
}

func TestGMLZooStyle(t *testing.T) {
	src := `# Topology Zoo style
graph [
  Network "Example NREN"
  node [
    id 0
    label "London"
    Country "UK"
    Latitude 51.5
  ]
  node [
    id 1
    label "Paris"
  ]
  edge [
    source 0
    target 1
    LinkSpeed "10"
  ]
]`
	g, err := ReadGML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNode("London") || !g.HasNode("Paris") {
		t.Fatalf("labels not used as IDs: %v", g.NodeIDs())
	}
	if g.Node("London").Get("Country") != "UK" {
		t.Errorf("attrs lost: %v", g.Node("London").Attrs())
	}
	if g.Node("London").Get("Latitude") != 51.5 {
		t.Errorf("float attr = %#v", g.Node("London").Get("Latitude"))
	}
	if !g.HasEdge("London", "Paris") {
		t.Error("edge missing")
	}
	if g.Edge("London", "Paris").Get("LinkSpeed") != "10" {
		t.Errorf("edge attr = %#v", g.Edge("London", "Paris").Get("LinkSpeed"))
	}
	if g.Get("Network") != "Example NREN" {
		t.Errorf("graph attr = %#v", g.Get("Network"))
	}
}

func TestGMLDuplicateLabels(t *testing.T) {
	src := `graph [
  node [ id 0 label "X" ]
  node [ id 1 label "X" ]
  edge [ source 0 target 1 ]
]`
	g, err := ReadGML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("duplicate labels collapsed: %v", g.NodeIDs())
	}
	if g.NumEdges() != 1 {
		t.Error("edge between duplicates lost")
	}
}

func TestGMLErrors(t *testing.T) {
	if _, err := ReadGML(strings.NewReader(`nodes [ ]`)); err == nil {
		t.Error("missing graph block accepted")
	}
	if _, err := ReadGML(strings.NewReader(`graph [ edge [ source 0 target 1 ] ]`)); err == nil {
		t.Error("dangling edge accepted")
	}
	if _, err := ReadGML(strings.NewReader(`graph [ x "unterminated ]`)); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := ReadGML(strings.NewReader(`graph [ key ]`)); err == nil {
		t.Error("valueless key accepted")
	}
}

func TestRocketFuel(t *testing.T) {
	src := `# rocketfuel cch subset
1 @Adelaide,AU bb -> <2> <3> =gw1 r0
2 @Sydney,AU -> <1> r1
3 @Perth,AU -> <1> <4> r1
-4 @External -> <3>
`
	g, err := ReadRocketFuel(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (external skipped)", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (dedup + dangling skipped)", g.NumEdges())
	}
	n1 := g.Node("1")
	if n1.Get("location") != "Adelaide,AU" || n1.Get("bb") != true || n1.Get("name") != "gw1" {
		t.Errorf("node attrs = %v", n1.Attrs())
	}
	// Round trip.
	var buf bytes.Buffer
	if err := WriteRocketFuel(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRocketFuel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 3 || back.NumEdges() != 2 {
		t.Errorf("round trip lost structure")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 2 {
		t.Fatal("structure lost")
	}
	if got.Node("r1").Get("asn") != 1 {
		t.Errorf("asn = %#v, want int (narrowed)", got.Node("r1").Get("asn"))
	}
	if got.Node("r1").Get("weight") != 1.5 {
		t.Errorf("weight = %#v", got.Node("r1").Get("weight"))
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[],"edges":[{"src":"a","dst":"b"}]}`)); err == nil {
		t.Error("dangling JSON edge accepted")
	}
}

func TestAdjacency(t *testing.T) {
	src := "# comment\na b\nb c\nisolated\n"
	g, err := ReadAdjacency(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "isolated") {
		t.Error("isolated node lost on write")
	}
	if _, err := ReadAdjacency(strings.NewReader("a b c\n")); err == nil {
		t.Error("3-field line accepted")
	}
}

func TestDefaultsApply(t *testing.T) {
	g := graph.New()
	g.AddNode("r1", graph.Attrs{"device_type": "server"})
	g.AddNode("r2")
	g.AddEdge("r1", "r2")
	StandardDefaults().Apply(g)
	if g.Node("r1").Get("device_type") != "server" {
		t.Error("default overwrote explicit value")
	}
	if g.Node("r2").Get("device_type") != "router" {
		t.Error("default not applied")
	}
	if g.Node("r2").Get("syntax") != "quagga" || g.Node("r2").Get("platform") != "netkit" {
		t.Error("paper defaults missing")
	}
	if g.Edge("r1", "r2").Get("type") != "physical" {
		t.Error("edge default not applied")
	}
}

func TestValidate(t *testing.T) {
	g := graph.New()
	if err := Validate(g); err == nil {
		t.Error("empty graph accepted")
	}
	g.AddNode("r1", graph.Attrs{"asn": 1})
	if err := Validate(g); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	g.AddNode("r2", graph.Attrs{"asn": -5})
	if err := Validate(g); err == nil {
		t.Error("negative asn accepted")
	}
	g.Node("r2").Set("asn", "hundred")
	if err := Validate(g); err == nil {
		t.Error("non-numeric asn accepted")
	}
}

func TestDispatch(t *testing.T) {
	g := sampleGraph()
	for _, f := range []Format{FormatGraphML, FormatGML, FormatJSON, FormatAdjacency} {
		var buf bytes.Buffer
		if err := Write(&buf, g, f); err != nil {
			t.Fatalf("%s write: %v", f, err)
		}
		got, err := Read(&buf, f)
		if err != nil {
			t.Fatalf("%s read: %v", f, err)
		}
		if got.NumNodes() != 3 || got.NumEdges() != 2 {
			t.Errorf("%s: structure lost", f)
		}
	}
	if _, err := Read(strings.NewReader(""), Format("exotic")); err == nil {
		t.Error("unknown read format accepted")
	}
	if err := Write(&bytes.Buffer{}, g, Format("exotic")); err == nil {
		t.Error("unknown write format accepted")
	}
}

func TestFormatForPath(t *testing.T) {
	cases := []struct {
		path string
		want Format
	}{
		{"lab.graphml", FormatGraphML},
		{"zoo.gml", FormatGML},
		{"t.json", FormatJSON},
		{"isp.cch", FormatRocketFuel},
		{"edges.adj", FormatAdjacency},
	}
	for _, c := range cases {
		got, err := FormatForPath(c.path)
		if err != nil || got != c.want {
			t.Errorf("FormatForPath(%s) = %v, %v", c.path, got, err)
		}
	}
	if _, err := FormatForPath("mystery.bin"); err == nil {
		t.Error("unknown extension accepted")
	}
}

// E14: the same topology expressed in every format loads to an equivalent
// graph (paper §5.1: heterogeneous information sources).
func TestE14_LoaderEquivalence(t *testing.T) {
	ref := sampleGraph()
	for _, f := range []Format{FormatGraphML, FormatGML, FormatJSON} {
		var buf bytes.Buffer
		if err := Write(&buf, ref, f); err != nil {
			t.Fatal(err)
		}
		g, err := Read(&buf, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ref.Nodes() {
			got := g.Node(n.ID())
			if got == nil {
				t.Fatalf("%s: node %s missing", f, n.ID())
			}
			if got.Get("asn") != n.Get("asn") {
				t.Errorf("%s: node %s asn %#v != %#v", f, n.ID(), got.Get("asn"), n.Get("asn"))
			}
		}
		for _, e := range ref.Edges() {
			if !g.HasEdge(e.Src(), e.Dst()) {
				t.Errorf("%s: edge %s-%s missing", f, e.Src(), e.Dst())
			}
		}
	}
}
