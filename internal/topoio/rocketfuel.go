package topoio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"autonetkit/internal/graph"
)

// RocketFuel support: the paper's Loader includes an extension to read
// RocketFuel ISP maps (§5.1). We implement the router-level `.cch` format:
//
//	uid @location [+] [bb] [&count] -> <nbr1> <nbr2> ... =name rN
//	-euid ... (external nodes, preceded by a minus sign, are skipped)
//
// Nodes gain attributes: location, bb (backbone flag), name. Edges are the
// "-> <uid>" adjacencies, undirected and deduplicated.

// ReadRocketFuel parses a RocketFuel router-level map into an undirected
// graph whose node IDs are the numeric uids.
func ReadRocketFuel(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	type adj struct {
		src  graph.ID
		dsts []graph.ID
	}
	var adjs []adj
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "-") {
			continue // external node record
		}
		fields := strings.Fields(line)
		if len(fields) < 1 {
			continue
		}
		uid := graph.ID(fields[0])
		attrs := graph.Attrs{}
		var nbrs []graph.ID
		inNbrs := false
		for _, f := range fields[1:] {
			switch {
			case f == "->":
				inNbrs = true
			case strings.HasPrefix(f, "@"):
				attrs["location"] = strings.TrimPrefix(f, "@")
			case f == "bb":
				attrs["bb"] = true
			case strings.HasPrefix(f, "="):
				attrs["name"] = strings.TrimPrefix(f, "=")
			case strings.HasPrefix(f, "<") && strings.HasSuffix(f, ">"):
				if !inNbrs {
					return nil, fmt.Errorf("topoio: rocketfuel line %d: neighbour %s before '->'", lineNo, f)
				}
				nbrs = append(nbrs, graph.ID(f[1:len(f)-1]))
			case strings.HasPrefix(f, "+"), strings.HasPrefix(f, "&"),
				strings.HasPrefix(f, "{"), strings.HasPrefix(f, "!"),
				strings.HasPrefix(f, "r"):
				// plus flag, external-degree, alias braces, responders,
				// trailing rN marker: ignored metadata.
			default:
				// Unknown token: tolerate, RocketFuel files are messy.
			}
		}
		g.AddNode(uid, attrs)
		adjs = append(adjs, adj{uid, nbrs})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topoio: reading rocketfuel: %w", err)
	}
	for _, a := range adjs {
		for _, d := range a.dsts {
			if !g.HasNode(d) {
				continue // neighbour outside the captured map
			}
			if !g.HasEdge(a.src, d) {
				g.AddEdge(a.src, d)
			}
		}
	}
	return g, nil
}

// WriteRocketFuel emits the subset of the cch format ReadRocketFuel
// understands, for synthesising test fixtures.
func WriteRocketFuel(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, n := range g.Nodes() {
		fmt.Fprintf(bw, "%s", n.ID())
		if loc, ok := n.Get("location").(string); ok {
			fmt.Fprintf(bw, " @%s", loc)
		}
		if bb, ok := n.Get("bb").(bool); ok && bb {
			fmt.Fprint(bw, " bb")
		}
		fmt.Fprint(bw, " ->")
		for _, nb := range g.Neighbors(n.ID()) {
			fmt.Fprintf(bw, " <%s>", nb)
		}
		if name, ok := n.Get("name").(string); ok {
			fmt.Fprintf(bw, " =%s", name)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("topoio: writing rocketfuel: %w", err)
	}
	return nil
}
