package topoio

import (
	"encoding/json"
	"fmt"
	"io"

	"autonetkit/internal/graph"
)

// JSON support: a simple schema used by the visualization pipeline and for
// machine-generated topologies.
//
//	{"directed": false,
//	 "attrs": {...},
//	 "nodes": [{"id": "r1", "attrs": {"asn": 1}}, ...],
//	 "edges": [{"src": "r1", "dst": "r2", "attrs": {...}}, ...]}

type jsonTopology struct {
	Directed bool           `json:"directed"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Nodes    []jsonNode     `json:"nodes"`
	Edges    []jsonEdge     `json:"edges"`
}

type jsonNode struct {
	ID    string         `json:"id"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

type jsonEdge struct {
	Src   string         `json:"src"`
	Dst   string         `json:"dst"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// ReadJSON parses the JSON topology schema. JSON numbers arrive as float64;
// whole numbers are narrowed to int so attribute comparisons (e.g. asn)
// behave identically across loaders.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	var doc jsonTopology
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("topoio: parsing JSON topology: %w", err)
	}
	var g *graph.Graph
	if doc.Directed {
		g = graph.NewDirected()
	} else {
		g = graph.New()
	}
	for k, v := range doc.Attrs {
		g.Set(k, narrowNumber(v))
	}
	for _, n := range doc.Nodes {
		g.AddNode(graph.ID(n.ID), narrowAttrs(n.Attrs))
	}
	for _, e := range doc.Edges {
		if !g.HasNode(graph.ID(e.Src)) || !g.HasNode(graph.ID(e.Dst)) {
			return nil, fmt.Errorf("topoio: JSON edge %s-%s references undeclared node", e.Src, e.Dst)
		}
		g.AddEdge(graph.ID(e.Src), graph.ID(e.Dst), narrowAttrs(e.Attrs))
	}
	return g, nil
}

func narrowAttrs(m map[string]any) graph.Attrs {
	out := graph.Attrs{}
	for k, v := range m {
		out[k] = narrowNumber(v)
	}
	return out
}

func narrowNumber(v any) any {
	if f, ok := v.(float64); ok && f == float64(int(f)) {
		return int(f)
	}
	return v
}

// WriteJSON serialises the graph into the JSON topology schema.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	doc := jsonTopology{Directed: g.Directed(), Nodes: []jsonNode{}, Edges: []jsonEdge{}}
	if len(g.Attrs()) > 0 {
		doc.Attrs = g.Attrs()
	}
	for _, n := range g.Nodes() {
		doc.Nodes = append(doc.Nodes, jsonNode{ID: string(n.ID()), Attrs: n.Attrs()})
	}
	for _, e := range g.Edges() {
		doc.Edges = append(doc.Edges, jsonEdge{Src: string(e.Src()), Dst: string(e.Dst()), Attrs: e.Attrs()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("topoio: writing JSON topology: %w", err)
	}
	return nil
}

// Format identifies a topology interchange format.
type Format string

// Supported formats.
const (
	FormatGraphML    Format = "graphml"
	FormatGML        Format = "gml"
	FormatJSON       Format = "json"
	FormatRocketFuel Format = "rocketfuel"
	FormatAdjacency  Format = "adjacency"
)

// Read dispatches to the appropriate reader for the format.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	switch f {
	case FormatGraphML:
		return ReadGraphML(r)
	case FormatGML:
		return ReadGML(r)
	case FormatJSON:
		return ReadJSON(r)
	case FormatRocketFuel:
		return ReadRocketFuel(r)
	case FormatAdjacency:
		return ReadAdjacency(r)
	}
	return nil, fmt.Errorf("topoio: unknown format %q", f)
}

// Write dispatches to the appropriate writer for the format.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case FormatGraphML:
		return WriteGraphML(w, g)
	case FormatGML:
		return WriteGML(w, g)
	case FormatJSON:
		return WriteJSON(w, g)
	case FormatRocketFuel:
		return WriteRocketFuel(w, g)
	case FormatAdjacency:
		return WriteAdjacency(w, g)
	}
	return fmt.Errorf("topoio: unknown format %q", f)
}

// FormatForPath guesses the format from a file extension.
func FormatForPath(path string) (Format, error) {
	switch {
	case hasSuffix(path, ".graphml"), hasSuffix(path, ".xml"):
		return FormatGraphML, nil
	case hasSuffix(path, ".gml"):
		return FormatGML, nil
	case hasSuffix(path, ".json"):
		return FormatJSON, nil
	case hasSuffix(path, ".cch"):
		return FormatRocketFuel, nil
	case hasSuffix(path, ".adj"), hasSuffix(path, ".txt"):
		return FormatAdjacency, nil
	}
	return "", fmt.Errorf("topoio: cannot infer format for %q", path)
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
