// Package topoio loads and saves network topologies in the interchange
// formats the paper's Loader module supports (§5.1): GraphML (the primary
// format, produced by graphical editors such as yEd), GML (the Internet
// Topology Zoo's format), the RocketFuel ISP-map format, a JSON schema, and
// plain adjacency lists. Loading can apply default attributes, mirroring the
// paper's load_graphml defaults (device_type=router, platform=netkit,
// syntax=quagga).
package topoio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"autonetkit/internal/graph"
)

// Defaults are attribute values applied to every node that lacks them,
// as the paper's loader does (§6.1).
type Defaults struct {
	Node graph.Attrs
	Edge graph.Attrs
}

// StandardDefaults returns the paper's defaults: routers on Netkit running
// Quagga, physical links.
func StandardDefaults() Defaults {
	return Defaults{
		Node: graph.Attrs{"device_type": "router", "platform": "netkit", "syntax": "quagga", "host": "localhost"},
		Edge: graph.Attrs{"type": "physical"},
	}
}

// Apply fills missing attributes on every node and edge of g.
func (d Defaults) Apply(g *graph.Graph) {
	for _, n := range g.Nodes() {
		for k, v := range d.Node {
			if !n.Has(k) {
				n.Set(k, v)
			}
		}
	}
	for _, e := range g.Edges() {
		for k, v := range d.Edge {
			if _, ok := e.Attrs()[k]; !ok {
				e.Set(k, v)
			}
		}
	}
}

// Validate performs the loader's sanity checks: non-empty, no dangling
// references (structurally impossible here), ASN values positive when
// present, and warns-as-errors on duplicate labels.
func Validate(g *graph.Graph) error {
	if g.NumNodes() == 0 {
		return fmt.Errorf("topoio: topology has no nodes")
	}
	for _, n := range g.Nodes() {
		if v, ok := n.Attrs()["asn"]; ok {
			f, isNum := graph.ToFloat(v)
			if !isNum || f <= 0 {
				return fmt.Errorf("topoio: node %q has invalid asn %v", n.ID(), v)
			}
		}
	}
	return nil
}

// ReadAdjacency parses a whitespace-separated edge list (one "src dst" pair
// per line, '#' comments) into an undirected graph.
func ReadAdjacency(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 1 {
			g.AddNode(graph.ID(fields[0]))
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("topoio: adjacency line %d: want 1 or 2 fields, got %d", lineNo, len(fields))
		}
		g.AddEdge(graph.ID(fields[0]), graph.ID(fields[1]))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topoio: reading adjacency list: %w", err)
	}
	return g, nil
}

// WriteAdjacency writes the graph as an edge list with isolated nodes on
// their own lines.
func WriteAdjacency(w io.Writer, g *graph.Graph) error {
	seen := map[graph.ID]bool{}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%s %s\n", e.Src(), e.Dst()); err != nil {
			return err
		}
		seen[e.Src()] = true
		seen[e.Dst()] = true
	}
	for _, id := range g.NodeIDs() {
		if !seen[id] {
			if _, err := fmt.Fprintln(w, id); err != nil {
				return err
			}
		}
	}
	return nil
}

// attrKeys returns the union of attribute keys across a set of attribute
// maps, sorted, for stable file output.
func attrKeys(maps []graph.Attrs) []string {
	set := map[string]bool{}
	for _, m := range maps {
		for k := range m {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
