package topoio

import (
	"strings"
	"testing"
)

// Fuzz targets: the loaders must never panic on arbitrary input — they
// either produce a graph or return an error. Seeds cover the syntactic
// corners; `go test -fuzz` explores further.

func FuzzReadGML(f *testing.F) {
	seeds := []string{
		``,
		`graph [ ]`,
		`graph [ node [ id 0 label "a" ] ]`,
		`graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 ] ]`,
		`graph [ directed 1 node [ id 0 label "x" nested [ deep [ k 1 ] ] ] ]`,
		`graph [ x "unterminated`,
		`graph [ key ]`,
		`[[[[`,
		`graph [ node [ id 0 label "a" ] node [ id 1 label "a" ] ]`,
		"graph [ # comment\n node [ id 0 ] ]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadGML(strings.NewReader(src))
		if err == nil && g == nil {
			t.Fatal("nil graph without error")
		}
	})
}

func FuzzReadGraphML(f *testing.F) {
	seeds := []string{
		``,
		`<graphml><graph edgedefault="undirected"></graph></graphml>`,
		`<graphml><key id="d0" for="node" attr.name="asn" attr.type="int"/><graph edgedefault="undirected"><node id="a"><data key="d0">1</data></node></graph></graphml>`,
		`<graphml><graph edgedefault="directed"><node id="a"/><node id="b"/><edge source="a" target="b"/></graph></graphml>`,
		`<graphml><graph><edge source="x" target="y"/></graph></graphml>`,
		`<not-xml`,
		`<graphml><key id="d0" for="node" attr.name="n" attr.type="int"/><graph edgedefault="u"><node id="a"><data key="d0">zz</data></node></graph></graphml>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadGraphML(strings.NewReader(src))
		if err == nil && g == nil {
			t.Fatal("nil graph without error")
		}
	})
}

func FuzzReadRocketFuel(f *testing.F) {
	seeds := []string{
		``,
		`1 @Place bb -> <2> =name r0`,
		"-1 external\n2 -> <1>\n",
		"1 -> <1>\n",
		"garbage line\n1 @X ->",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ReadRocketFuel(strings.NewReader(src))
	})
}

func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"nodes":[{"id":"a"}],"edges":[]}`,
		`{"directed":true,"nodes":[{"id":"a","attrs":{"asn":1.5}}],"edges":[]}`,
		`{"nodes":[],"edges":[{"src":"a","dst":"b"}]}`,
		`{"nodes":[{"id":"a"}],"edges":[{"src":"a","dst":"a"}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ReadJSON(strings.NewReader(src))
	})
}
