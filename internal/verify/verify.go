// Package verify implements the pre-deployment verification the paper
// proposes as the natural extension of the system (§8: "Offline
// verification systems could be applied prior to deployment, applying
// static checking or stability detection. Integrating pre- and
// post-deployment verification systems allows test-driven network
// development").
//
// Two layers:
//
//   - Static checks over the Resource Database: address uniqueness and
//     subnet consistency, BGP session symmetry (every neighbor statement
//     must have a matching statement on the peer, with the correct
//     remote-as), OSPF coverage (advertised networks must correspond to
//     attached interfaces), and route-reflection sanity (clients must have
//     a reflector; reflector graphs must be connected per AS).
//
//   - Stability detection: a what-if run of the control plane (the same
//     engines the emulator uses, without deploying) that reports whether
//     BGP converges under a chosen vendor profile — catching §7.2-style
//     oscillations before launch.
package verify

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"autonetkit/internal/nidb"
	"autonetkit/internal/routing"
)

// Severity grades a finding.
type Severity string

// Severities.
const (
	Error   Severity = "error"
	Warning Severity = "warning"
)

// Finding is one verification result.
type Finding struct {
	Check    string // which rule fired
	Severity Severity
	Device   string // "" for network-wide findings
	Detail   string
}

// String renders one finding as "[severity] check device: detail".
func (f Finding) String() string {
	dev := f.Device
	if dev == "" {
		dev = "*"
	}
	return fmt.Sprintf("[%s] %s %s: %s", f.Severity, f.Check, dev, f.Detail)
}

// Report is the outcome of a verification run.
type Report struct {
	Findings []Finding
}

// OK reports whether no error-severity findings exist.
func (r Report) OK() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return false
		}
	}
	return true
}

// Errors returns only the error-severity findings.
func (r Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

// String renders the report one finding per line.
func (r Report) String() string {
	if len(r.Findings) == 0 {
		return "verification passed: no findings"
	}
	lines := make([]string, len(r.Findings))
	for i, f := range r.Findings {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

func (r *Report) add(check string, sev Severity, device, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Check: check, Severity: sev, Device: device, Detail: fmt.Sprintf(format, args...),
	})
}

// Static runs all static checks over a compiled Resource Database.
func Static(db *nidb.DB) Report {
	var r Report
	checkAddressUniqueness(db, &r)
	checkSubnetConsistency(db, &r)
	checkBGPSessionSymmetry(db, &r)
	checkOSPFCoverage(db, &r)
	checkRouteReflection(db, &r)
	checkCostSymmetry(db, &r)
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].Severity != r.Findings[j].Severity {
			return r.Findings[i].Severity == Error
		}
		return r.Findings[i].Device < r.Findings[j].Device
	})
	return r
}

// deviceInterfaces extracts the interface entries of a device tree.
func deviceInterfaces(d *nidb.Device) []map[string]any {
	v, ok := d.Get("interfaces")
	if !ok {
		return nil
	}
	list, _ := v.([]any)
	out := make([]map[string]any, 0, len(list))
	for _, x := range list {
		if m, ok := x.(map[string]any); ok {
			out = append(out, m)
		}
	}
	return out
}

// checkAddressUniqueness: no address appears on two interfaces anywhere.
func checkAddressUniqueness(db *nidb.DB, r *Report) {
	owner := map[netip.Addr]string{}
	record := func(a netip.Addr, dev string) {
		if prev, dup := owner[a]; dup {
			r.add("address-uniqueness", Error, dev,
				"address %v already assigned on %s", a, prev)
			return
		}
		owner[a] = dev
	}
	for _, d := range db.Devices() {
		for _, ifc := range deviceInterfaces(d) {
			if a, ok := ifc["ip_address"].(netip.Addr); ok {
				record(a, string(d.ID))
			}
		}
		if v, ok := d.Get("loopback.ip"); ok {
			if a, ok := v.(netip.Addr); ok {
				record(a, string(d.ID))
			}
		}
	}
}

// checkSubnetConsistency: every interface address lies inside its subnet,
// and devices sharing a collision domain agree on the subnet.
func checkSubnetConsistency(db *nidb.DB, r *Report) {
	cdSubnet := map[string]netip.Prefix{}
	for _, d := range db.Devices() {
		for _, ifc := range deviceInterfaces(d) {
			a, aok := ifc["ip_address"].(netip.Addr)
			p, pok := ifc["network"].(netip.Prefix)
			cd := fmt.Sprint(ifc["cd"])
			if !aok || !pok {
				r.add("subnet-consistency", Error, string(d.ID),
					"interface %v lacks address or network", ifc["id"])
				continue
			}
			if !p.Contains(a) {
				r.add("subnet-consistency", Error, string(d.ID),
					"interface %v address %v outside subnet %v", ifc["id"], a, p)
			}
			if prev, ok := cdSubnet[cd]; ok && prev != p {
				r.add("subnet-consistency", Error, string(d.ID),
					"collision domain %s has conflicting subnets %v and %v", cd, prev, p)
			}
			cdSubnet[cd] = p
		}
	}
}

// checkBGPSessionSymmetry: every neighbor statement must have a matching
// statement on the addressed peer with the correct remote-as — the
// point-to-point consistency burden of §1.
func checkBGPSessionSymmetry(db *nidb.DB, r *Report) {
	// Address ownership across interfaces and loopbacks.
	owner := map[netip.Addr]*nidb.Device{}
	asnOf := map[string]int{}
	for _, d := range db.Devices() {
		for _, ifc := range deviceInterfaces(d) {
			if a, ok := ifc["ip_address"].(netip.Addr); ok {
				owner[a] = d
			}
		}
		if v, ok := d.Get("loopback.ip"); ok {
			if a, ok := v.(netip.Addr); ok {
				owner[a] = d
			}
		}
		asnOf[string(d.ID)] = d.GetInt("bgp.asn", 0)
	}
	neighbors := func(d *nidb.Device) []map[string]any {
		var out []map[string]any
		for _, key := range []string{"bgp.ebgp_neighbors", "bgp.ibgp_neighbors"} {
			if v, ok := d.Get(key); ok {
				if list, ok := v.([]any); ok {
					for _, x := range list {
						if m, ok := x.(map[string]any); ok {
							out = append(out, m)
						}
					}
				}
			}
		}
		return out
	}
	// Collect (local device, peer device) claims.
	type claim struct{ local, peer string }
	claims := map[claim]bool{}
	for _, d := range db.Devices() {
		myASN := asnOf[string(d.ID)]
		for _, nbr := range neighbors(d) {
			addr, ok := nbr["ip"].(netip.Addr)
			if !ok {
				r.add("bgp-session", Error, string(d.ID), "neighbor entry lacks address: %v", nbr)
				continue
			}
			peer, ok := owner[addr]
			if !ok {
				r.add("bgp-session", Error, string(d.ID),
					"neighbor %v is not an address of any device", addr)
				continue
			}
			remote, _ := nbr["remote_asn"].(int)
			actual := asnOf[string(peer.ID)]
			if remote != actual {
				r.add("bgp-session", Error, string(d.ID),
					"neighbor %s configured as remote-as %d but %s is AS%d", addr, remote, peer.ID, actual)
			}
			if myASN == 0 {
				r.add("bgp-session", Error, string(d.ID), "has neighbors but no BGP ASN")
			}
			claims[claim{string(d.ID), string(peer.ID)}] = true
		}
	}
	// Sort the claim set before emitting findings: map iteration order is
	// random, and the report's finding order must be byte-stable across
	// repeated builds.
	ordered := make([]claim, 0, len(claims))
	for c := range claims {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].local != ordered[j].local {
			return ordered[i].local < ordered[j].local
		}
		return ordered[i].peer < ordered[j].peer
	})
	for _, c := range ordered {
		if !claims[claim{c.peer, c.local}] {
			r.add("bgp-session", Error, c.local,
				"session to %s has no reverse neighbor statement", c.peer)
		}
	}
}

// checkOSPFCoverage: every non-passive OSPF network statement corresponds
// to an attached interface subnet or the loopback.
func checkOSPFCoverage(db *nidb.DB, r *Report) {
	for _, d := range db.Devices() {
		v, ok := d.Get("ospf.ospf_links")
		if !ok {
			continue
		}
		attached := map[netip.Prefix]bool{}
		for _, ifc := range deviceInterfaces(d) {
			if p, ok := ifc["network"].(netip.Prefix); ok {
				attached[p] = true
			}
		}
		if lv, ok := d.Get("loopback.ip"); ok {
			if a, ok := lv.(netip.Addr); ok {
				attached[netip.PrefixFrom(a, 32)] = true
			}
		}
		list, _ := v.([]any)
		for _, x := range list {
			m, ok := x.(map[string]any)
			if !ok {
				continue
			}
			p, ok := m["network"].(netip.Prefix)
			if !ok {
				r.add("ospf-coverage", Error, string(d.ID), "ospf link lacks network: %v", m)
				continue
			}
			if !attached[p] {
				r.add("ospf-coverage", Error, string(d.ID),
					"ospf advertises %v but no interface attaches to it", p)
			}
		}
	}
}

// checkRouteReflection: if any device in an AS is a reflector, every
// non-reflector must have at least one session to a reflector, and iBGP
// sessions must stay within the AS.
func checkRouteReflection(db *nidb.DB, r *Report) {
	type asInfo struct {
		reflectors []string
		clients    []string
	}
	byASN := map[int]*asInfo{}
	clientHasRR := map[string]bool{}
	loopbackOwner := map[netip.Addr]string{}
	isRR := map[string]bool{}
	for _, d := range db.Devices() {
		if v, ok := d.Get("loopback.ip"); ok {
			if a, ok := v.(netip.Addr); ok {
				loopbackOwner[a] = string(d.ID)
			}
		}
		if v, ok := d.Get("bgp.route_reflector"); ok && v == true {
			isRR[string(d.ID)] = true
		}
	}
	for _, d := range db.Devices() {
		asn := d.GetInt("bgp.asn", 0)
		if asn == 0 {
			continue
		}
		info := byASN[asn]
		if info == nil {
			info = &asInfo{}
			byASN[asn] = info
		}
		if isRR[string(d.ID)] {
			info.reflectors = append(info.reflectors, string(d.ID))
		} else {
			info.clients = append(info.clients, string(d.ID))
		}
		if v, ok := d.Get("bgp.ibgp_neighbors"); ok {
			list, _ := v.([]any)
			for _, x := range list {
				m, _ := x.(map[string]any)
				if m == nil {
					continue
				}
				if remote, _ := m["remote_asn"].(int); remote != asn {
					r.add("route-reflection", Error, string(d.ID),
						"iBGP neighbor with remote-as %d outside AS%d", remote, asn)
				}
				if a, ok := m["ip"].(netip.Addr); ok {
					if isRR[loopbackOwner[a]] {
						clientHasRR[string(d.ID)] = true
					}
				}
			}
		}
	}
	// Emit per-AS findings in ASN order, not map order, so the report is
	// byte-stable across repeated builds.
	asns := make([]int, 0, len(byASN))
	for asn := range byASN {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	for _, asn := range asns {
		info := byASN[asn]
		if len(info.reflectors) == 0 {
			continue // full mesh: nothing to check
		}
		for _, c := range info.clients {
			if !clientHasRR[c] {
				r.add("route-reflection", Error, c,
					"AS%d uses route reflection but this client peers with no reflector", asn)
			}
		}
	}
}

// checkCostSymmetry warns when the two ends of a link carry different OSPF
// costs — legal, occasionally intended, but much more often a copy-paste
// slip (§1: "ensuring that a few values are updated consistently").
func checkCostSymmetry(db *nidb.DB, r *Report) {
	type attach struct {
		dev   string
		iface string
		cost  int
	}
	byCD := map[string][]attach{}
	var order []string
	for _, d := range db.Devices() {
		for _, ifc := range deviceInterfaces(d) {
			cd := fmt.Sprint(ifc["cd"])
			cost, _ := ifc["ospf_cost"].(int)
			if cost == 0 {
				continue
			}
			if _, seen := byCD[cd]; !seen {
				order = append(order, cd)
			}
			byCD[cd] = append(byCD[cd], attach{string(d.ID), fmt.Sprint(ifc["id"]), cost})
		}
	}
	for _, cd := range order {
		atts := byCD[cd]
		for i := 1; i < len(atts); i++ {
			if atts[i].cost != atts[0].cost {
				r.add("cost-symmetry", Warning, atts[i].dev,
					"interface %s costs %d but %s's %s on the same link costs %d",
					atts[i].iface, atts[i].cost, atts[0].dev, atts[0].iface, atts[0].cost)
			}
		}
	}
}

// Stability runs the what-if control-plane check: the BGP engine over the
// parsed-from-rendered (or directly supplied) device configs, under a
// vendor profile, without deploying (§8 "stability detection", catching the
// §7.2 oscillation pre-launch).
func Stability(devices []*routing.DeviceConfig, profile routing.VendorProfile, maxRounds int) (routing.BGPResult, Report) {
	var r Report
	domain := routing.NewOSPFDomain(devices)
	if err := domain.Converge(); err != nil {
		r.add("stability", Error, "", "IGP convergence failed: %v", err)
		return routing.BGPResult{}, r
	}
	igp := routing.NewCompositeIGP()
	for _, dc := range devices {
		if dc.OSPF != nil {
			igp.AddDevice(dc, domain)
		} else {
			igp.AddDevice(dc, nil)
		}
	}
	engine, err := routing.NewBGPEngine(devices, func(string) routing.VendorProfile { return profile }, igp)
	if err != nil {
		r.add("stability", Error, "", "BGP engine: %v", err)
		return routing.BGPResult{}, r
	}
	engine.SetSequential(true)
	for _, down := range engine.SessionsDown() {
		r.add("stability", Error, "", "session would not establish: %s", down)
	}
	res := engine.Run(maxRounds)
	if res.Oscillating {
		r.add("stability", Error, "",
			"BGP does not converge under the %s decision process (cycle length %d after %d rounds)",
			profile.Name, res.CycleLen, res.Rounds)
	}
	return res, r
}
