package verify

import (
	"net/netip"
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/emul"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/nidb"
	"autonetkit/internal/render"
	"autonetkit/internal/routing"
	"autonetkit/internal/topogen"
)

// compiled builds a NIDB from the given input graph through the standard
// pipeline.
func compiled(t *testing.T, g *graph.Graph, dopts design.Options) *nidb.DB {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlayGraph(core.OverlayInput, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range in.Nodes() {
		if n.Get("device_type") == nil {
			n.MustSet("device_type", "router")
		}
	}
	if err := design.BuildAll(anm, dopts); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestStaticPassesOnCleanPipelineOutput(t *testing.T) {
	for _, g := range []*graph.Graph{topogen.Fig5(), topogen.SmallInternet()} {
		db := compiled(t, g, design.Options{})
		rep := Static(db)
		if !rep.OK() {
			t.Errorf("clean pipeline output rejected:\n%s", rep)
		}
	}
}

func TestStaticPassesWithRouteReflectors(t *testing.T) {
	db := compiled(t, topogen.OscillationGadget(), design.Options{RouteReflectors: true})
	rep := Static(db)
	if !rep.OK() {
		t.Errorf("RR pipeline output rejected:\n%s", rep)
	}
}

func TestDetectsDuplicateAddress(t *testing.T) {
	db := compiled(t, topogen.Fig5(), design.Options{})
	// Sabotage: copy r1's loopback onto r2.
	lb, _ := db.Device("r1").Get("loopback.ip")
	db.Device("r2").MustSet("loopback.ip", lb)
	rep := Static(db)
	if rep.OK() {
		t.Fatal("duplicate address undetected")
	}
	if !strings.Contains(rep.String(), "address-uniqueness") {
		t.Errorf("wrong check fired:\n%s", rep)
	}
}

func TestDetectsAddressOutsideSubnet(t *testing.T) {
	db := compiled(t, topogen.Fig5(), design.Options{})
	ifaces, _ := db.Device("r1").Get("interfaces")
	m := ifaces.([]any)[0].(map[string]any)
	m["ip_address"] = netip.MustParseAddr("203.0.113.9")
	rep := Static(db)
	if rep.OK() {
		t.Fatal("out-of-subnet address undetected")
	}
	found := false
	for _, f := range rep.Errors() {
		if f.Check == "subnet-consistency" && f.Device == "r1" {
			found = true
		}
	}
	if !found {
		t.Errorf("findings:\n%s", rep)
	}
}

func TestDetectsAsymmetricBGPSession(t *testing.T) {
	db := compiled(t, topogen.Fig5(), design.Options{})
	// Sabotage: remove r5's eBGP neighbors entirely.
	db.Device("r5").MustSet("bgp.ebgp_neighbors", []any{})
	rep := Static(db)
	if rep.OK() {
		t.Fatal("one-sided session undetected")
	}
	hits := 0
	for _, f := range rep.Errors() {
		if f.Check == "bgp-session" && strings.Contains(f.Detail, "no reverse neighbor") {
			hits++
		}
	}
	if hits != 2 { // r3->r5 and r4->r5 both dangle
		t.Errorf("dangling sessions found = %d, want 2:\n%s", hits, rep)
	}
}

func TestDetectsWrongRemoteAS(t *testing.T) {
	db := compiled(t, topogen.Fig5(), design.Options{})
	nbrs, _ := db.Device("r5").Get("bgp.ebgp_neighbors")
	nbrs.([]any)[0].(map[string]any)["remote_asn"] = 99
	rep := Static(db)
	if rep.OK() {
		t.Fatal("wrong remote-as undetected")
	}
	if !strings.Contains(rep.String(), "remote-as 99") {
		t.Errorf("findings:\n%s", rep)
	}
}

func TestDetectsOSPFOverAdvertisement(t *testing.T) {
	db := compiled(t, topogen.Fig5(), design.Options{})
	links, _ := db.Device("r1").Get("ospf.ospf_links")
	db.Device("r1").MustSet("ospf.ospf_links", append(links.([]any), map[string]any{
		"network": netip.MustParsePrefix("198.51.100.0/24"), "area": 0,
	}))
	rep := Static(db)
	if rep.OK() {
		t.Fatal("phantom OSPF network undetected")
	}
	if !strings.Contains(rep.String(), "ospf-coverage") {
		t.Errorf("findings:\n%s", rep)
	}
}

func TestDetectsOrphanRRClient(t *testing.T) {
	db := compiled(t, topogen.OscillationGadget(), design.Options{RouteReflectors: true})
	// Sabotage: strip c1's iBGP sessions so it peers with no reflector.
	db.Device("c1").MustSet("bgp.ibgp_neighbors", []any{})
	rep := Static(db)
	if rep.OK() {
		t.Fatal("orphan client undetected")
	}
	found := false
	for _, f := range rep.Errors() {
		if f.Check == "route-reflection" && f.Device == "c1" {
			found = true
		}
	}
	if !found {
		t.Errorf("findings:\n%s", rep)
	}
}

func TestReportFormatting(t *testing.T) {
	var r Report
	if r.String() != "verification passed: no findings" {
		t.Errorf("empty report = %q", r.String())
	}
	r.add("x", Warning, "", "w")
	r.add("y", Error, "dev", "e")
	if r.OK() {
		t.Error("report with error is OK")
	}
	if len(r.Errors()) != 1 {
		t.Error("Errors() filter wrong")
	}
	s := r.String()
	if !strings.Contains(s, "[error] y dev: e") || !strings.Contains(s, "[warning] x *: w") {
		t.Errorf("formatting:\n%s", s)
	}
}

// Stability: the §7.2 gadget is flagged before deployment under the IOS
// profile and passes under Quagga — pre-deployment §8 verification.
func TestStabilityWhatIf(t *testing.T) {
	g := topogen.OscillationGadget()
	anm := core.NewANM()
	if _, err := anm.AddOverlayGraph(core.OverlayInput, g); err != nil {
		t.Fatal(err)
	}
	if err := design.BuildAll(anm, design.Options{RouteReflectors: true}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := emul.Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	// Recover the configs without starting (the what-if input): start a
	// scratch copy to parse.
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	var devices []*routing.DeviceConfig
	for _, name := range lab.VMNames() {
		vm, _ := lab.VM(name)
		devices = append(devices, vm.Config)
	}

	res, rep := Stability(devices, routing.ProfileIOS, 60)
	if !res.Oscillating || rep.OK() {
		t.Errorf("IOS what-if should flag oscillation: %+v\n%s", res, rep)
	}
	res, rep = Stability(devices, routing.ProfileQuagga, 60)
	if !res.Converged || !rep.OK() {
		t.Errorf("Quagga what-if should pass: %+v\n%s", res, rep)
	}
}

func TestStabilityFlagsBrokenSessions(t *testing.T) {
	db := compiled(t, topogen.Fig5(), design.Options{})
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	conf, _ := fs.Read("localhost/netkit/r5/etc/quagga/bgpd.conf")
	fs.Write("localhost/netkit/r5/etc/quagga/bgpd.conf",
		strings.ReplaceAll(conf, "remote-as 1", "remote-as 77"))
	lab, err := emul.Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	var devices []*routing.DeviceConfig
	for _, name := range lab.VMNames() {
		vm, _ := lab.VM(name)
		devices = append(devices, vm.Config)
	}
	_, rep := Stability(devices, routing.ProfileQuagga, 60)
	if rep.OK() {
		t.Error("broken sessions not flagged")
	}
	if !strings.Contains(rep.String(), "would not establish") {
		t.Errorf("findings:\n%s", rep)
	}
}

func TestCostSymmetryWarning(t *testing.T) {
	db := compiled(t, topogen.Fig5(), design.Options{})
	// Sabotage: bump one side's interface cost.
	ifaces, _ := db.Device("r1").Get("interfaces")
	ifaces.([]any)[0].(map[string]any)["ospf_cost"] = 50
	rep := Static(db)
	// Warnings don't fail verification...
	if !rep.OK() {
		t.Fatalf("warning escalated to error:\n%s", rep)
	}
	// ...but they are reported.
	found := false
	for _, f := range rep.Findings {
		if f.Check == "cost-symmetry" && f.Severity == Warning {
			found = true
		}
	}
	if !found {
		t.Errorf("asymmetric cost not flagged:\n%s", rep)
	}
}
