package autonetkit

import (
	"os"
	"strings"
	"testing"

	"autonetkit/internal/chaos"
	"autonetkit/internal/compile"
	"autonetkit/internal/deploy"
	"autonetkit/internal/render"
	"autonetkit/internal/sched"
)

// runSchedDrainDrill builds the Small-Internet fixture with the given
// worker count, deploys it through the cluster scheduler onto four
// emulated substrate hosts, runs testdata/sched/drain_drill.chaos (a
// drain-host maintenance drill against the running lab) and returns the
// rendered report.
func runSchedDrainDrill(t *testing.T, workers int) string {
	t.Helper()
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{
		Compile: compile.Options{Workers: workers},
		Render:  render.Options{Workers: workers},
	}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.DeployCluster(sched.Uniform(4, 5), deploy.ClusterOptions{Seed: 2013})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open("testdata/sched/drain_drill.chaos")
	if err != nil {
		t.Fatal(err)
	}
	sc, diags := chaos.ParseScenarioFile(f, "drain_drill.chaos")
	f.Close()
	if diags.HasErrors() {
		t.Fatalf("scenario diagnostics:\n%s", diags)
	}
	eng, err := net.Chaos(dep.Lab(), chaos.Options{Hosts: dep})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("drill produced error findings:\n%s", rep)
	}
	return rep.String() + "\n"
}

// Golden scheduler drain drill: draining a substrate host under a running
// lab live re-places its VMs, re-boots them, and the network reconverges —
// byte-reproducibly across runs and across build worker counts, matching
// testdata/sched/drain_drill.report (regenerate deliberately with
// UPDATE_SCHED_GOLDEN=1 go test -run TestGoldenSchedDrainDrill).
func TestGoldenSchedDrainDrill(t *testing.T) {
	report := runSchedDrainDrill(t, 1)
	if wide := runSchedDrainDrill(t, 8); wide != report {
		t.Fatalf("report differs between Workers=1 and Workers=8:\n--- 1 ---\n%s--- 8 ---\n%s", report, wide)
	}

	// Structural assertions first, so a stale golden cannot mask a broken
	// drill: VMs must actually move and the post-drain check must pass.
	for _, want := range []string{
		"VMs moved, 0 stranded",
		"drain-host",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	goldenPath := "testdata/sched/drain_drill.report"
	if os.Getenv("UPDATE_SCHED_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if report != string(golden) {
		t.Errorf("drill report differs from golden:\n--- got ---\n%s--- want ---\n%s", report, golden)
	}
}
