package autonetkit

import (
	"context"
	"fmt"
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/topogen"
)

// buildCached runs the design-through-render chain over g with the given
// store (nil disables caching) and worker count, returning the built
// network. Counters are read back through net.Stats().
func buildCached(t *testing.T, g *graph.Graph, store *cache.Store, workers int) *Network {
	t.Helper()
	net, err := LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	err = net.Build(BuildOptions{
		Cache:   store,
		Compile: compile.Options{Workers: workers},
		Render:  render.Options{Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// compileDigests snapshots every router's compile digest, the oracle for
// which devices a model edit is allowed to invalidate.
func compileDigests(net *Network) map[graph.ID]cache.Digest {
	out := map[graph.ID]cache.Digest{}
	for _, n := range net.ANM.Overlay(core.OverlayPhy).Routers() {
		out[n.ID()] = compile.DeviceDigest(net.ANM, net.Alloc, compile.Options{}, n.ID())
	}
	return out
}

// TestCachePipelineProperty is the property-based regression harness over
// the incremental build cache: for a table of bounded random topologies
// (seeded generators), a cold cached build, a fully warm cached build at
// Workers 1 and 8, and a post-single-edit partial rebuild must all be
// byte-for-byte identical to the cache-disabled build of the same model,
// with the obs counters proving exactly which devices were reused. Failures
// log the generator/seed/workers row that produced them.
func TestCachePipelineProperty(t *testing.T) {
	type tcase struct {
		name string
		seed int64
		gen  func(seed int64) (*graph.Graph, error)
	}
	gens := []struct {
		name  string
		seeds []int64
		gen   func(seed int64) (*graph.Graph, error)
	}{
		{"nren", []int64{3, 11}, func(s int64) (*graph.Graph, error) {
			return topogen.NREN(topogen.NRENConfig{ASes: 4, Routers: 48, Links: 60, Seed: s})
		}},
		{"waxman", []int64{3, 11}, func(s int64) (*graph.Graph, error) {
			return topogen.Waxman(24, 0.6, 0.4, s)
		}},
		{"preferential", []int64{3, 11}, func(s int64) (*graph.Graph, error) {
			return topogen.Preferential(20, 2, s)
		}},
		{"grid", []int64{0}, func(int64) (*graph.Graph, error) {
			return topogen.Grid(4, 4)
		}},
		{"small-internet", []int64{0}, func(int64) (*graph.Graph, error) {
			return topogen.SmallInternet(), nil
		}},
	}
	var cases []tcase
	for _, g := range gens {
		for _, s := range g.seeds {
			cases = append(cases, tcase{name: g.name, seed: s, gen: g.gen})
		}
	}

	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/seed=%d", tc.name, tc.seed), func(t *testing.T) {
			row := func(workers int) string {
				return fmt.Sprintf("generator=%s seed=%d workers=%d", tc.name, tc.seed, workers)
			}
			g, err := tc.gen(tc.seed)
			if err != nil {
				t.Fatal(err)
			}

			baseline := buildCached(t, g.Copy(), nil, 1)
			refHash := fileSetHash(t, baseline.Files)
			n := int64(baseline.DB.Len())
			if n == 0 {
				t.Fatalf("%s: empty build", row(1))
			}

			store := cache.NewMemory()
			cold := buildCached(t, g.Copy(), store, 1)
			cc := cold.Stats().Counters
			if cc[obs.CounterCompileCacheMisses] != n || cc[obs.CounterCompileCacheHits] != 0 {
				t.Errorf("%s: cold compile hits/misses = %d/%d, want 0/%d",
					row(1), cc[obs.CounterCompileCacheHits], cc[obs.CounterCompileCacheMisses], n)
			}
			if h := fileSetHash(t, cold.Files); h != refHash {
				t.Errorf("%s: cold cached build differs from cache-disabled build", row(1))
			}

			// Fully warm builds at both worker counts: zero misses, zero
			// devices compiled, bytes reused, identical tree.
			for _, workers := range []int{8, 1} {
				warm := buildCached(t, g.Copy(), store, workers)
				wc := warm.Stats().Counters
				if wc[obs.CounterCompileCacheHits] != n || wc[obs.CounterCompileCacheMisses] != 0 {
					t.Errorf("%s: warm compile hits/misses = %d/%d, want %d/0",
						row(workers), wc[obs.CounterCompileCacheHits], wc[obs.CounterCompileCacheMisses], n)
				}
				if wc[obs.CounterRenderCacheHits] != n || wc[obs.CounterRenderCacheMisses] != 0 {
					t.Errorf("%s: warm render hits/misses = %d/%d, want %d/0",
						row(workers), wc[obs.CounterRenderCacheHits], wc[obs.CounterRenderCacheMisses], n)
				}
				if wc[obs.CounterDevicesCompiled] != 0 {
					t.Errorf("%s: warm build compiled %d devices", row(workers), wc[obs.CounterDevicesCompiled])
				}
				if wc[obs.CounterCacheBytes] == 0 {
					t.Errorf("%s: warm build reused zero cached bytes", row(workers))
				}
				if h := fileSetHash(t, warm.Files); h != refHash {
					t.Errorf("%s: warm cached build differs from cache-disabled build", row(workers))
				}
			}

			// Post-single-edit partial rebuild: bump the cost of the first
			// OSPF adjacency. The digest diff is the oracle for exactly
			// which devices may recompile.
			edit := buildCached(t, g.Copy(), store, 1)
			ospf := edit.ANM.Overlay(design.OverlayOSPF)
			edges := ospf.Edges()
			if len(edges) == 0 {
				t.Fatalf("%s: no OSPF adjacency to edit", row(1))
			}
			before := compileDigests(edit)
			if err := edges[0].Set(design.AttrCost, 99); err != nil {
				t.Fatal(err)
			}
			after := compileDigests(edit)
			affected := int64(0)
			for id, d := range after {
				if before[id] != d {
					affected++
				}
			}
			if affected == 0 || affected == n {
				t.Fatalf("%s: cost edit on %s moved %d/%d digests — not a partial rebuild",
					row(1), edges[0], affected, n)
			}

			// The cache-disabled rebuild of the edited model is ground truth.
			dbRef, err := compile.Compile(edit.ANM, edit.Alloc, compile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fsRef, err := render.RenderWith(context.Background(), dbRef, render.Options{})
			if err != nil {
				t.Fatal(err)
			}
			editHash := fileSetHash(t, fsRef)

			// First edited rebuild: exactly the affected devices miss.
			// Second (any worker count): the store is warm for the new state.
			for i, workers := range []int{1, 8} {
				col := obs.NewCollector()
				db, err := compile.Compile(edit.ANM, edit.Alloc,
					compile.Options{Workers: workers, Cache: store, Obs: col})
				if err != nil {
					t.Fatal(err)
				}
				fs, err := render.RenderWith(context.Background(), db,
					render.Options{Workers: workers, Cache: store, Obs: col})
				if err != nil {
					t.Fatal(err)
				}
				c := col.Snapshot().Counters
				wantMiss := affected
				if i > 0 {
					wantMiss = 0
				}
				if c[obs.CounterCompileCacheMisses] != wantMiss ||
					c[obs.CounterCompileCacheHits] != n-wantMiss {
					t.Errorf("%s: edited rebuild #%d compile hits/misses = %d/%d, want %d/%d",
						row(workers), i+1, c[obs.CounterCompileCacheHits],
						c[obs.CounterCompileCacheMisses], n-wantMiss, wantMiss)
				}
				// Render may reuse more than compile (an invalidated device
				// can compile to unchanged data) but never less.
				if c[obs.CounterRenderCacheMisses] > wantMiss {
					t.Errorf("%s: edited rebuild #%d render misses = %d > %d affected",
						row(workers), i+1, c[obs.CounterRenderCacheMisses], wantMiss)
				}
				if h := fileSetHash(t, fs); h != editHash {
					t.Errorf("%s: edited cached rebuild differs from cache-disabled rebuild", row(workers))
				}
			}
		})
	}
}
