module autonetkit

go 1.22
