package autonetkit

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"autonetkit/internal/chaos"
	"autonetkit/internal/deploy"
	"autonetkit/internal/sched"
)

// runAnksched runs the anksched binary with the given stdin script,
// returning stdout only (recovery notes go to stderr by design — they name
// epochs and are not part of the byte-deterministic drill output).
func runAnksched(t *testing.T, bin, script string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append(args, "-script", "-")...)
	cmd.Stdin = strings.NewReader(script)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("anksched %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return string(out)
}

// TestAnkschedStateDirByteIdentity is the PR's CLI-level acceptance
// drill: the same op sequence produces byte-identical output whether it
// runs in one uncrashed process or is split across two processes that
// hand state over through a -state-dir journal. The split run's combined
// stdout must equal the monolithic run's, byte for byte — recovery is
// invisible in the output.
func TestAnkschedStateDirByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "anksched")
	opsRaw, err := os.ReadFile(filepath.Join("testdata", "journal", "ops.sched"))
	if err != nil {
		t.Fatal(err)
	}
	statusRaw, err := os.ReadFile(filepath.Join("testdata", "journal", "status.sched"))
	if err != nil {
		t.Fatal(err)
	}
	ops, status := string(opsRaw), string(statusRaw)
	common := []string{"-hosts", "4", "-cap", "6", "-seed", "2013"}

	// One process, no durability: the reference output.
	whole := runAnksched(t, bin, ops+status, common...)

	// Two processes handing over through the journal.
	dir := t.TempDir()
	durable := append(common, "-state-dir", dir, "-snapshot-every", "3")
	part1 := runAnksched(t, bin, ops, durable...)
	part2 := runAnksched(t, bin, status, durable...)
	if got := part1 + part2; got != whole {
		t.Errorf("split run differs from uncrashed run:\n--- split ---\n%s--- whole ---\n%s", got, whole)
	}

	// The recovered status also matches the committed golden (regenerate
	// deliberately with UPDATE_JOURNAL_GOLDEN=1).
	goldenPath := filepath.Join("testdata", "journal", "drill.status")
	if os.Getenv("UPDATE_JOURNAL_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(part2), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if part2 != string(golden) {
		t.Errorf("recovered status differs from golden:\n--- got ---\n%s--- want ---\n%s", part2, golden)
	}

	// A third process reopens the same directory once more: double
	// recovery must not drift.
	part3 := runAnksched(t, bin, status, durable...)
	if part3 != part2 {
		t.Errorf("second recovery drifted:\n--- first ---\n%s--- second ---\n%s", part2, part3)
	}
}

// runSchedCrashDrill deploys the Small-Internet fixture through a durable
// cluster scheduler and runs the crash_drill.chaos scenario (drain, then
// kill + recover the scheduler mid-lab).
func runSchedCrashDrill(t *testing.T) string {
	t.Helper()
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.DeployCluster(sched.Uniform(4, 5), deploy.ClusterOptions{
		Seed:     2013,
		StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Cluster.Close()
	f, err := os.Open("testdata/journal/crash_drill.chaos")
	if err != nil {
		t.Fatal(err)
	}
	sc, diags := chaos.ParseScenarioFile(f, "crash_drill.chaos")
	f.Close()
	if diags.HasErrors() {
		t.Fatalf("scenario diagnostics:\n%s", diags)
	}
	eng, err := net.Chaos(dep.Lab(), chaos.Options{Hosts: dep})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("drill produced error findings:\n%s", rep)
	}
	return rep.String() + "\n"
}

// Golden scheduler crash drill: the durable scheduler is killed and
// recovered under a running lab; the recovered state is byte-identical,
// the lab never converges away from its post-drain state, and the report
// matches testdata/journal/crash_drill.report (regenerate deliberately
// with UPDATE_JOURNAL_GOLDEN=1 go test -run TestGoldenSchedCrashDrill).
func TestGoldenSchedCrashDrill(t *testing.T) {
	report := runSchedCrashDrill(t)

	// Structural assertions first, so a stale golden cannot mask a broken
	// drill.
	for _, want := range []string{
		"crash-sched",
		"byte-identical",
		"VMs moved, 0 stranded",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	goldenPath := "testdata/journal/crash_drill.report"
	if os.Getenv("UPDATE_JOURNAL_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if report != string(golden) {
		t.Errorf("drill report differs from golden:\n--- got ---\n%s--- want ---\n%s", report, golden)
	}
}
