package autonetkit

import (
	"testing"

	"autonetkit/internal/topogen"
	"autonetkit/internal/verify"
)

// Repeated builds of the same seeded topology must agree byte-for-byte on
// every hashed or rendered artifact: the file tree (content and order), the
// Resource-Database JSON, and the per-device compile digests. This is the
// regression net for map-iteration order leaking into outputs — any unsorted
// range over a map feeding these artifacts flips this test within a few runs.
func TestRepeatedBuildByteDeterminism(t *testing.T) {
	build := func() *Network {
		g, err := topogen.NREN(topogen.NRENConfig{ASes: 4, Routers: 48, Links: 60, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return buildCached(t, g, nil, 1)
	}
	ref := build()
	refTree := fileSetHash(t, ref.Files)
	refJSON, err := ref.DB.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	refDigests := compileDigests(ref)

	for run := 1; run <= 2; run++ {
		net := build()
		if h := fileSetHash(t, net.Files); h != refTree {
			t.Errorf("run %d: file tree hash drifted: %s vs %s", run, h, refTree)
		}
		j, err := net.DB.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(j) != string(refJSON) {
			t.Errorf("run %d: Resource-Database JSON drifted", run)
		}
		for id, d := range compileDigests(net) {
			if refDigests[id] != d {
				t.Errorf("run %d: compile digest of %s drifted", run, id)
			}
		}
	}
}

// The static verifier's findings order must be byte-stable across runs even
// when many findings fire at once — its checks aggregate claims in maps, and
// an unsorted range there would reorder the report run to run.
func TestVerifyFindingsOrderStable(t *testing.T) {
	net := buildCached(t, topogen.SmallInternet(), nil, 1)
	// Break iBGP symmetry on one device: its former peers each raise an
	// unmatched-session finding, giving the report enough entries for
	// ordering to matter.
	net.DB.Device("as100r2").MustSet("bgp.ibgp_neighbors", []any{})
	ref := verify.Static(net.DB).String()
	if ref == "verification passed: no findings" {
		t.Fatal("mutation produced no findings; the ordering check is vacuous")
	}
	for i := 0; i < 5; i++ {
		if got := verify.Static(net.DB).String(); got != ref {
			t.Fatalf("verify findings order unstable:\n--- run %d ---\n%s\n--- ref ---\n%s", i, got, ref)
		}
	}
}
