// The Netkit Small-Internet lab (paper §3.1, Fig. 1) end to end:
// seven ASes and fourteen routers are designed, compiled, rendered,
// deployed onto the emulated platform, and measured — a traceroute crossing
// four ASes is translated back into router names (§6.1, Fig. 7) and the
// running OSPF topology is validated against the design (§5.7/§8).
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"
	"strings"

	"autonetkit"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/measure"
	"autonetkit/internal/topogen"
	"autonetkit/internal/viz"
)

func main() {
	net, err := autonetkit.LoadGraph(topogen.SmallInternet())
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d config files for 14 routers in 7 ASes\n", net.Files.Len())

	// Deploy: archive -> transfer -> extract -> lstart (§5.7).
	dep, err := net.Deploy(deploy.Options{OnEvent: func(e deploy.Event) {
		fmt.Printf("  [%s] %s\n", e.Stage, e.Detail)
	}})
	if err != nil {
		log.Fatal(err)
	}
	lab := dep.Lab()
	fmt.Printf("BGP: converged=%v in %d rounds\n\n", lab.BGPResult().Converged, lab.BGPResult().Rounds)

	client := net.Measure(lab)

	// The §6.1 measurement: traceroute from as300r2 towards as100r2's
	// first interface, with each hop mapped back to its router.
	var dst netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Node == "as100r2" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	raw, err := client.Run("as300r2", "traceroute -naU "+dst.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- raw traceroute output ---")
	fmt.Print(raw)
	tr, err := client.ParseTraceroute("as300r2", dst, raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%s]\n\n", strings.Join(tr.Path(), ", "))

	// Automated validation: measured OSPF graph vs the design overlay.
	measured, err := client.MeasuredOSPFGraph(lab.VMNames())
	if err != nil {
		log.Fatal(err)
	}
	diff := measure.Compare(net.ANM.Overlay(design.OverlayOSPF).Graph(), measured)
	fmt.Println("validation:", diff)

	// Fig. 6/7: export the eBGP overlay with the traceroute highlighted.
	doc, err := net.ExportOverlay(design.OverlayEBGP, viz.Options{})
	if err != nil {
		log.Fatal(err)
	}
	doc.AddHighlight([]string{tr.Path()[0], tr.Path()[len(tr.Path())-1]}, tr.Path())
	html, err := doc.HTML()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("smallinternet_ebgp.html", []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote smallinternet_ebgp.html (open in a browser)")
}
