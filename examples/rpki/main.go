// RPKI service network (paper §3.3): a certificate-authority hierarchy over
// the per-AS address allocation, publication points and a two-level cache
// distribution, deployed as 800+ VMs placed across emulation hosts (the
// StarBed experiment), with ROA propagation and origin validation — a
// hijacked announcement is classified invalid.
package main

import (
	"fmt"
	"log"

	"autonetkit"
	"autonetkit/internal/deploy"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/netaddr"
	"autonetkit/internal/services/rpki"
	"autonetkit/internal/topogen"
)

func main() {
	// Use the NREN-scale model's allocation as the resource base.
	cfg := topogen.NRENConfig{ASes: 42, Routers: 800, Links: 1100}
	g, err := topogen.NREN(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net, err := autonetkit.LoadGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Design(autonetkit.BuildOptions{}.Design); err != nil {
		log.Fatal(err)
	}
	if err := net.Allocate(ipalloc.Config{
		InfraBlock:    netaddr.MustPrefix("10.0.0.0/8"),
		LoopbackBlock: netaddr.MustPrefix("172.16.0.0/12"),
	}); err != nil {
		log.Fatal(err)
	}

	// CA hierarchy: one trust anchor, one CA per AS holding its block.
	h := rpki.NewHierarchy("rir", netaddr.MustPrefix("10.0.0.0/8"))
	dist := rpki.NewDistribution(h)
	var roas int
	for asn, block := range net.Alloc.InfraBlocks {
		caName := fmt.Sprintf("ca-as%d", asn)
		if _, err := h.AddCA(caName, "rir", block); err != nil {
			log.Fatal(err)
		}
		maxLen := block.Bits() + 8
		if maxLen > 32 {
			maxLen = 32
		}
		roa, err := h.SignROA(caName, block, maxLen, asn)
		if err != nil {
			log.Fatal(err)
		}
		pp, err := dist.AddPublicationPoint(fmt.Sprintf("pp-as%d", asn))
		if err != nil {
			log.Fatal(err)
		}
		pp.Publish(roa)
		roas++
	}
	fmt.Printf("hierarchy: %d CAs, %d ROAs, %d publication points\n", len(h.CAs()), roas, roas)

	// Two-level cache distribution: a top cache per region, leaves below.
	var points []string
	for asn := range net.Alloc.InfraBlocks {
		points = append(points, fmt.Sprintf("pp-as%d", asn))
	}
	if _, err := dist.AddCache("top", "", points...); err != nil {
		log.Fatal(err)
	}
	caches := 1
	for i := 0; i < 10; i++ {
		if _, err := dist.AddCache(fmt.Sprintf("leaf%d", i), "top"); err != nil {
			log.Fatal(err)
		}
		caches++
	}
	rounds, err := dist.Propagate(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagation: %d caches complete=%v in %d rounds\n", caches, dist.Complete(), rounds)

	// Deployment at StarBed scale: routers + service VMs across hosts.
	var vms []string
	for _, n := range net.ANM.Overlay("phy").Routers() {
		vms = append(vms, string(n.ID()))
	}
	for _, name := range h.CAs() {
		vms = append(vms, "vm-"+name)
	}
	for i := 0; i < caches; i++ {
		vms = append(vms, fmt.Sprintf("vm-cache%d", i))
	}
	pool, err := deploy.NewHostPool(
		&deploy.Host{Name: "starbed-a", Capacity: 300},
		&deploy.Host{Name: "starbed-b", Capacity: 300},
		&deploy.Host{Name: "starbed-c", Capacity: 300},
	)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := pool.Place(vms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d VMs across %d hosts (paper: 800+ Linux VMs on StarBed)\n",
		len(placement), len(pool.Hosts()))

	// Origin validation: a legitimate route and a hijack.
	roaSet := h.ROAs()
	var anyASN int
	var anyBlock = net.Alloc.InfraBlocks
	for asn := range anyBlock {
		anyASN = asn
		break
	}
	block := anyBlock[anyASN]
	fmt.Printf("\norigin validation against the ROA set:\n")
	fmt.Printf("  %v from AS%-5d -> %s (legitimate)\n", block, anyASN,
		rpki.ValidateOrigin(roaSet, block, anyASN))
	fmt.Printf("  %v from AS%-5d -> %s (hijack)\n", block, 64666,
		rpki.ValidateOrigin(roaSet, block, 64666))
	outside := netaddr.MustPrefix("198.51.100.0/24")
	fmt.Printf("  %v from AS%-5d -> %s (uncovered space)\n", outside, anyASN,
		rpki.ValidateOrigin(roaSet, outside, anyASN))
}
