// Large-scale model (paper §3.2): the European-NREN-scale network — 42
// ASes, 1158 routers, 1470 links — run through the pipeline with per-stage
// timings and output-size statistics, plus a demonstration that the same
// design rules apply unchanged at this scale (§6 reusability claim).
package main

import (
	"fmt"
	"log"
	"time"

	"autonetkit"
	"autonetkit/internal/design"
	"autonetkit/internal/topogen"
)

func main() {
	cfg := topogen.DefaultNREN()
	fmt.Printf("synthesising NREN-scale model: %d ASes, %d routers, %d links\n",
		cfg.ASes, cfg.Routers, cfg.Links)

	t0 := time.Now()
	g, err := topogen.NREN(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net, err := autonetkit.LoadGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	// The identical design rules used for the 14-router Small-Internet lab.
	if err := net.Design(design.Options{}); err != nil {
		log.Fatal(err)
	}
	if err := net.Allocate(autonetkit.BuildOptions{}.IP); err != nil {
		log.Fatal(err)
	}
	t1 := time.Now()
	if err := net.Compile(autonetkit.BuildOptions{}.Compile); err != nil {
		log.Fatal(err)
	}
	t2 := time.Now()
	if err := net.Render(); err != nil {
		log.Fatal(err)
	}
	t3 := time.Now()

	fmt.Printf("\npaper §3.2 table (shape comparison; absolute times differ by substrate):\n")
	fmt.Printf("  %-28s %12s %12s\n", "stage", "paper (2013)", "this repo")
	fmt.Printf("  %-28s %12s %12v\n", "load + build topologies", "15 s", t1.Sub(t0).Round(time.Millisecond))
	fmt.Printf("  %-28s %12s %12v\n", "compile network model", "27 s", t2.Sub(t1).Round(time.Millisecond))
	fmt.Printf("  %-28s %12s %12v\n", "render configurations", "2 min", t3.Sub(t2).Round(time.Millisecond))
	fmt.Printf("  %-28s %12s %12d\n", "configuration items", "16,144", net.Files.Len())
	fmt.Printf("  %-28s %12s %11.1fMB\n", "uncompressed size", "20MB", float64(net.Files.TotalBytes())/1e6)

	ibgp := net.ANM.Overlay(design.OverlayIBGP)
	ebgp := net.ANM.Overlay(design.OverlayEBGP)
	ospf := net.ANM.Overlay(design.OverlayOSPF)
	fmt.Printf("\noverlay sizes: ospf %d edges, ibgp %d sessions, ebgp %d sessions\n",
		ospf.NumEdges(), ibgp.NumEdges(), ebgp.NumEdges())
	fmt.Println("\nsame rules, zero code changes — only the input topology grew (paper §6)")
}
