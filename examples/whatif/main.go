// What-if analysis (paper §8: emulation supports "experimentation, testing
// and what-if analysis"; the future-work section proposes incident tooling
// and test-driven network development). This example:
//
//  1. verifies the compiled network statically before deployment,
//  2. deploys the Small-Internet lab and records the baseline traceroute,
//  3. injects incidents — a core link failure, then a full router outage —
//     re-converging and re-measuring after each,
//  4. shows the partition when a stub AS loses its only remaining uplink.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"strings"

	"autonetkit"
	"autonetkit/internal/deploy"
	"autonetkit/internal/topogen"
)

func main() {
	net, err := autonetkit.LoadGraph(topogen.SmallInternet())
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		log.Fatal(err)
	}

	// Pre-deployment verification (§8).
	report, err := net.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pre-deployment verification:", report)

	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lab := dep.Lab()
	client := net.Measure(lab)

	var dst netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Node == "as100r2" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	show := func(label string) {
		tr, err := client.RunTraceroute("as300r2", dst)
		if err != nil {
			log.Fatal(err)
		}
		status := "reached"
		if !tr.Reached {
			status = "UNREACHABLE"
		}
		fmt.Printf("%-34s %-11s [%s]\n", label, status, strings.Join(tr.Path(), ", "))
	}

	show("baseline:")

	// Incident 1: as300r2 loses its uplink to AS40. AS300 still reaches
	// the core through as300r1 -- as30r1, so the path re-routes.
	if err := lab.FailLink("as40r1", "as300r2"); err != nil {
		log.Fatal(err)
	}
	show("as40r1--as300r2 down:")

	// Incident 2: the remaining border router as30r1 dies: AS300 is now
	// partitioned from the rest of the internet.
	if err := lab.FailNode("as30r1"); err != nil {
		log.Fatal(err)
	}
	show("as30r1 down too:")

	fmt.Println()
	fmt.Println("post-incident BGP state:", summarize(lab.BGPResult().Converged, lab.BGPResult().Rounds))
}

func summarize(converged bool, rounds int) string {
	if converged {
		return fmt.Sprintf("re-converged in %d rounds", rounds)
	}
	return "did not re-converge"
}
