// Services over a routing topology (paper §3.3): "many network experiments
// ... require a realistic routing topology, but are concerned with network
// services built on the top of these". This example attaches server devices
// to the Small-Internet lab, generates DNS zones consistent with the IP
// allocation, drops the zone files into a DNS server VM's filesystem with
// the §5.5 folder-copy mechanism, deploys the lab, and runs a traceroute
// whose hops are resolved through the generated DNS rather than the raw
// allocation table.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"strings"

	"autonetkit"
	"autonetkit/internal/core"
	"autonetkit/internal/deploy"
	"autonetkit/internal/measure"
	"autonetkit/internal/render"
	"autonetkit/internal/services/dns"
	"autonetkit/internal/topogen"
)

func main() {
	g := topogen.SmallInternet()
	// Attach a DNS server and a content server (device_type=server keeps
	// them out of the routing overlays, §5.2.2).
	g.AddNode("dns1", map[string]any{
		core.AttrASN: 1, core.AttrDeviceType: core.DeviceServer,
	})
	g.AddNode("www1", map[string]any{
		core.AttrASN: 100, core.AttrDeviceType: core.DeviceServer,
	})
	g.AddEdge("dns1", "as1r1", map[string]any{"type": "physical"})
	g.AddEdge("www1", "as100r1", map[string]any{"type": "physical"})

	net, err := autonetkit.LoadGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		log.Fatal(err)
	}

	// Generate the DNS zones from the allocation (§3.3: "consistent with
	// the name and IP address allocations in the network").
	zones, err := net.DNS(dns.Config{Domain: "lab"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d forward and %d reverse zones\n", len(zones.Forward), len(zones.Reverse))

	// Drop the rendered zone files into the DNS server's filesystem — the
	// §5.5 folder-copy path ("simple specification of nested folders to
	// configure services, without writing code").
	serviceTree := render.NewFileSet()
	for _, z := range zones.All() {
		serviceTree.Write("etc/bind/zones/"+z.Name, z.Render())
	}
	net.Files.MergeUnder("localhost/netkit/dns1", serviceTree)
	fmt.Printf("merged %d zone files under dns1's image\n", serviceTree.Len())

	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lab := dep.Lab()
	fmt.Printf("lab running: %d machines (incl. 2 servers), BGP converged=%v\n\n",
		len(lab.VMNames()), lab.BGPResult().Converged)

	// Measure with DNS-based name resolution.
	resolver := dns.NewResolver(zones)
	client := measure.NewClient(lab, func(a netip.Addr) string {
		return resolver.HostPart(a)
	})
	var dst netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Node == "www1" {
			dst = e.Addr
			break
		}
	}
	raw, err := client.Run("dns1", "traceroute -naU "+dst.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- traceroute from dns1 (AS1) to www1 (AS100), DNS-resolved ---")
	fmt.Print(raw)
	tr, err := client.ParseTraceroute("dns1", dst, raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%s]\n", strings.Join(tr.Path(), ", "))

	// One zone file, as the DNS server sees it.
	zone, _ := net.Files.Read("localhost/netkit/dns1/etc/bind/zones/as100.lab")
	fmt.Println("\n--- as100.lab zone (excerpt) ---")
	for i, line := range strings.Split(zone, "\n") {
		if i > 8 {
			fmt.Println("...")
			break
		}
		fmt.Println(line)
	}
}
