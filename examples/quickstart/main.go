// Quickstart: the paper's Fig. 5 five-router, two-AS network taken from an
// in-memory topology to rendered device configurations, printing one
// generated Quagga config — the §4.1/§6.1 round trip in a dozen lines.
package main

import (
	"fmt"
	"log"

	"autonetkit"
	"autonetkit/internal/topogen"
)

func main() {
	// The whiteboard drawing: 5 routers, ASNs {1,1,1,1,2}, 6 links.
	net, err := autonetkit.LoadGraph(topogen.Fig5())
	if err != nil {
		log.Fatal(err)
	}

	// Design rules + IP allocation + compile + render, all defaults.
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overlays built: %v\n", net.ANM.OverlayNames())
	fmt.Printf("addresses allocated: %d\n", net.Alloc.Table.Len())
	fmt.Printf("configuration files rendered: %d (%d bytes)\n\n",
		net.Files.Len(), net.Files.TotalBytes())

	conf, ok := net.Files.Read("localhost/netkit/r1/etc/quagga/ospfd.conf")
	if !ok {
		log.Fatal("ospfd.conf missing")
	}
	fmt.Println("--- r1 ospfd.conf (from the paper's §4.1 template) ---")
	fmt.Print(conf)

	fmt.Println("\n--- lab.conf ---")
	lab, _ := net.Files.Read("localhost/netkit/lab.conf")
	fmt.Print(lab)
}
