// Validating theory in emulation (paper §7.2): an RFC 3345-class MED/IGP
// oscillation gadget — two route-reflector clusters, with the contested
// prefix arriving from one AS at cluster 1 and twice (different MEDs,
// different IGP distances) from another AS at cluster 2 — is compiled once
// and deployed onto all four target platforms. The IOS, JunOS and C-BGP
// decision processes include the IGP-cost tie-break and oscillate
// persistently; Quagga's 2013 default skips it and converges. "A simulated
// model of the idealised BGP decision process would not have shown this
// behaviour."
package main

import (
	"fmt"
	"log"

	"autonetkit"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/topogen"
)

func main() {
	fmt.Println("platform    syntax   result")
	fmt.Println("--------    ------   ------")
	for _, target := range []struct{ platform, syntax string }{
		{"netkit", "quagga"},
		{"dynagen", "ios"},
		{"junosphere", "junos"},
		{"cbgp", "cbgp"},
	} {
		g := topogen.OscillationGadget()
		// Route the same model onto a different platform: the paper's "easy
		// to implement the same network model on different types of router".
		for _, n := range g.Nodes() {
			n.Set("platform", target.platform)
			n.Set("syntax", target.syntax)
		}
		net, err := autonetkit.LoadGraph(g)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.Build(autonetkit.BuildOptions{
			Design: design.Options{RouteReflectors: true},
		}); err != nil {
			log.Fatal(err)
		}
		dep, err := net.Deploy(deploy.Options{Platform: target.platform, MaxBGPRounds: 60})
		if err != nil {
			log.Fatal(err)
		}
		res := dep.Lab().BGPResult()
		verdict := fmt.Sprintf("converged in %d rounds", res.Rounds)
		if res.Oscillating {
			verdict = fmt.Sprintf("OSCILLATES (cycle length %d)", res.CycleLen)
		}
		fmt.Printf("%-11s %-8s %s\n", target.platform, target.syntax, verdict)
	}

	fmt.Println()
	fmt.Println("The gadget is an RFC 3345-class MED/IGP oscillation condition: two exits")
	fmt.Println("from the same neighbour AS land in different reflector clusters, the")
	fmt.Println("IGP-far exit carrying the better MED. With the IGP-cost tie-break in the")
	fmt.Println("decision process (IOS/JunOS/C-BGP) no stable route assignment exists and")
	fmt.Println("the reflectors flap persistently — even under asynchronous processing.")
	fmt.Println("Quagga's 2013 default skips the IGP comparison and converges, exactly the")
	fmt.Println("vendor split the paper observed in emulation.")
}
