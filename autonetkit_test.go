package autonetkit

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autonetkit/internal/core"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/topogen"
	"autonetkit/internal/topoio"
	"autonetkit/internal/viz"
)

func TestLoadGraphAppliesDefaults(t *testing.T) {
	net, err := LoadGraph(topogen.Fig5())
	if err != nil {
		t.Fatal(err)
	}
	in := net.ANM.Overlay(core.OverlayInput)
	if in.Node("r1").GetString(core.AttrSyntax, "") != "quagga" {
		t.Error("defaults not applied")
	}
}

func TestLoadReader(t *testing.T) {
	gml := `graph [ node [ id 0 label "a" asn 1 ] node [ id 1 label "b" asn 1 ] edge [ source 0 target 1 ] ]`
	net, err := LoadReader(strings.NewReader(gml), topoio.FormatGML)
	if err != nil {
		t.Fatal(err)
	}
	if net.ANM.Overlay(core.OverlayInput).NumNodes() != 2 {
		t.Error("load failed")
	}
	if _, err := LoadReader(strings.NewReader("junk["), topoio.FormatGML); err == nil {
		t.Error("junk accepted")
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lab.gml"
	g := topogen.Fig5()
	f, err := osCreate(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topoio.WriteGML(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	net, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if net.ANM.Overlay(core.OverlayInput).NumNodes() != 5 {
		t.Error("file load failed")
	}
	if _, err := Load(dir + "/missing.gml"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := Load(dir + "/unknown.zzz"); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestStageOrderEnforced(t *testing.T) {
	net, _ := LoadGraph(topogen.Fig5())
	if err := net.Compile(compileOptions()); err == nil {
		t.Error("Compile before Allocate accepted")
	}
	if err := net.Render(); err == nil {
		t.Error("Render before Compile accepted")
	}
	if _, err := net.Deploy(deploy.Options{}); err == nil {
		t.Error("Deploy before Render accepted")
	}
	if err := net.SaveConfigs(t.TempDir()); err == nil {
		t.Error("SaveConfigs before Render accepted")
	}
}

// The facade's end-to-end quickstart: load, build, deploy, measure.
func TestEndToEnd(t *testing.T) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if net.Files.Len() == 0 {
		t.Fatal("no files rendered")
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	if !lab.BGPResult().Converged {
		t.Fatalf("bgp = %+v", lab.BGPResult())
	}
	client := net.Measure(lab)
	// The §6.1 experiment: traceroute to as100r2's first interface.
	var dst netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Node == "as100r2" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	tr, err := client.RunTraceroute("as300r2", dst)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached {
		t.Fatalf("traceroute failed: %+v", tr)
	}
	path := tr.Path()
	if path[0] != "as300r2" || path[len(path)-1] != "as100r2" {
		t.Errorf("path = %v", path)
	}
}

func TestExportOverlay(t *testing.T) {
	net, _ := LoadGraph(topogen.Fig5())
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	doc, err := net.ExportOverlay(design.OverlayEBGP, viz.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 5 {
		t.Errorf("nodes = %d", len(doc.Nodes))
	}
	if _, err := net.ExportOverlay("phantom", viz.Options{}); err == nil {
		t.Error("phantom overlay accepted")
	}
}

func TestSaveConfigs(t *testing.T) {
	net, _ := LoadGraph(topogen.Fig5())
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := net.SaveConfigs(dir); err != nil {
		t.Fatal(err)
	}
	if !fileExists(dir + "/localhost/netkit/lab.conf") {
		t.Error("lab.conf not written")
	}
}

func TestCustomIPBlocks(t *testing.T) {
	net, _ := LoadGraph(topogen.Fig5())
	err := net.Build(BuildOptions{IP: ipalloc.Config{
		InfraBlock:    mustPrefix("172.20.0.0/16"),
		LoopbackBlock: mustPrefix("172.31.0.0/16"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range net.Alloc.Table.Entries() {
		if e.Loopback {
			if !mustPrefix("172.31.0.0/16").Contains(e.Addr) {
				t.Errorf("loopback %v outside custom block", e.Addr)
			}
		} else if !mustPrefix("172.20.0.0/16").Contains(e.Addr) {
			t.Errorf("infra %v outside custom block", e.Addr)
		}
	}
}

func TestLoadGraphRejectsInvalid(t *testing.T) {
	g := topogen.Fig5()
	g.Node("r1").Set("asn", -3)
	if _, err := LoadGraph(g); err == nil {
		t.Error("invalid asn accepted")
	}
}

func TestBuildPropagatesStageErrors(t *testing.T) {
	// A topology that allocates fine but fails compile: unknown platform.
	g := topogen.Fig5()
	g.Node("r1").Set("platform", "exotic")
	net, err := LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err == nil {
		t.Error("unknown platform accepted by Build")
	}
	// Allocation failure: tiny infra block.
	net2, _ := LoadGraph(topogen.Fig5())
	err = net2.Build(BuildOptions{IP: ipalloc.Config{
		InfraBlock:    mustPrefix("198.51.100.0/30"),
		LoopbackBlock: mustPrefix("10.0.0.0/8"),
	}})
	if err == nil {
		t.Error("exhausted infra block accepted by Build")
	}
}

func TestDNSBeforeAllocate(t *testing.T) {
	net, _ := LoadGraph(topogen.Fig5())
	if _, err := net.DNS(dnsConfig()); err == nil {
		t.Error("DNS before Allocate accepted")
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	zones, err := net.DNS(dnsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(zones.Forward) == 0 || len(zones.Reverse) == 0 {
		t.Error("zones empty")
	}
}

// The §6.1 walkthrough's exact first step: load_graphml("small_internet.
// graphml") — shipped as a fixture — and run it to the paper's traceroute.
func TestSmallInternetGraphMLFixture(t *testing.T) {
	net, err := Load("testdata/small_internet.graphml")
	if err != nil {
		t.Fatal(err)
	}
	in := net.ANM.Overlay(core.OverlayInput)
	if in.NumNodes() != 14 || in.NumEdges() != 17 {
		t.Fatalf("fixture shape: %d nodes %d edges", in.NumNodes(), in.NumEdges())
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	client := net.Measure(dep.Lab())
	var dst netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Node == "as100r2" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	tr, err := client.RunTraceroute("as300r2", dst)
	if err != nil || !tr.Reached {
		t.Fatalf("%v %+v", err, tr)
	}
	want := "as300r2,as40r1,as1r1,as20r3,as20r2,as100r1,as100r2"
	if got := strings.Join(tr.Path(), ","); got != want {
		t.Errorf("path = %s, want the paper's %s", got, want)
	}
}

// Golden regression anchor: the Fig. 5 pipeline output is byte-identical
// to the committed tree in testdata/golden_fig5 (regenerate deliberately
// with examples in DESIGN.md if behaviour is intentionally changed).
func TestGoldenFig5Tree(t *testing.T) {
	net, err := LoadGraph(topogen.Fig5())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	goldenRoot := "testdata/golden_fig5"
	seen := 0
	err = filepath.WalkDir(goldenRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(goldenRoot, path)
		if err != nil {
			return err
		}
		want, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		got, ok := net.Files.Read(filepath.ToSlash(rel))
		if !ok {
			t.Errorf("pipeline no longer renders %s", rel)
			return nil
		}
		if got != string(want) {
			t.Errorf("%s differs from golden output", rel)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != net.Files.Len() {
		t.Errorf("golden tree has %d files, pipeline renders %d", seen, net.Files.Len())
	}
}
