// Package autonetkit is a Go implementation of the automated emulated
// network experimentation system of Knight et al. (CoNEXT 2013): a pipeline
// that turns a high-level network design — an annotated attribute graph —
// into concrete device configurations, deploys them onto an emulation
// platform, and measures the running network.
//
// The pipeline stages mirror the paper's architecture (Fig. 2):
//
//	topology file ──Load──▶ input overlay
//	            ──Design──▶ protocol overlays (ospf/ebgp/ibgp/isis, §4.2)
//	          ──Allocate──▶ ipv4 overlay + address table (§5.3)
//	           ──Compile──▶ Resource Database / NIDB (§5.4)
//	            ──Render──▶ configuration file tree (§4.1, §5.5)
//	            ──Deploy──▶ running emulated lab (§5.7)
//	           ──Measure──▶ traceroutes, adjacency graphs, validation
//
// A minimal end-to-end run:
//
//	net, _ := autonetkit.LoadGraph(topogen.SmallInternet())
//	_ = net.Build(autonetkit.BuildOptions{})
//	dep, _ := net.Deploy(deploy.Options{})
//	client := net.Measure(dep.Lab())
//	tr, _ := client.RunTraceroute("as1r1", dst)
package autonetkit

import (
	"context"
	"fmt"
	"io"
	"os"

	"net/netip"

	"autonetkit/internal/cache"
	"autonetkit/internal/chaos"
	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/emul"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/measure"
	"autonetkit/internal/nidb"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/sched"
	"autonetkit/internal/services/dns"
	"autonetkit/internal/topoio"
	"autonetkit/internal/verify"
	"autonetkit/internal/viz"
)

// Network carries one experiment through the pipeline.
type Network struct {
	ANM   *core.ANM
	Alloc *ipalloc.Result
	DB    *nidb.DB
	Files *render.FileSet

	// obs collects per-stage timing spans and work counters for this
	// network's pipeline run; read it via Stats or WriteTrace.
	obs *obs.Collector
}

// Stats snapshots the pipeline's observability state: one timing span per
// executed stage (with sub-spans for the stage's internal phases) plus the
// work counters (obs.CounterDevicesCompiled, obs.CounterFilesRendered, …).
func (n *Network) Stats() obs.Stats { return n.obs.Snapshot() }

// WriteTrace prints the pipeline trace — per-stage timings and counters —
// in human-readable form (the `ankbuild -trace` output).
func (n *Network) WriteTrace(w io.Writer) error { return n.obs.WriteTrace(w) }

// Load reads a topology file (format inferred from the extension), applies
// the standard defaults (§6.1: device_type=router, platform=netkit,
// syntax=quagga) and validates it.
func Load(path string) (*Network, error) {
	format, err := topoio.FormatForPath(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("autonetkit: %w", err)
	}
	defer f.Close()
	return LoadReader(f, format)
}

// LoadReader reads a topology from a stream in the given format.
func LoadReader(r io.Reader, format topoio.Format) (*Network, error) {
	g, err := topoio.Read(r, format)
	if err != nil {
		return nil, err
	}
	return LoadGraph(g)
}

// LoadGraph installs an in-memory topology as the input overlay.
func LoadGraph(g *graph.Graph) (*Network, error) {
	topoio.StandardDefaults().Apply(g)
	if err := topoio.Validate(g); err != nil {
		return nil, err
	}
	anm := core.NewANM()
	if _, err := anm.AddOverlayGraph(core.OverlayInput, g); err != nil {
		return nil, err
	}
	return &Network{ANM: anm, obs: obs.NewCollector()}, nil
}

// BuildOptions parameterises the design-through-render chain.
type BuildOptions struct {
	Design  design.Options
	IP      ipalloc.Config
	Compile compile.Options
	Render  render.Options
	// Cache, when non-nil, enables the incremental content-addressed build
	// cache for both the compile and render stages (unless a stage already
	// carries its own store). Devices whose inputs are unchanged since the
	// store was last warmed skip compilation and template execution;
	// artifacts are byte-identical either way.
	Cache *cache.Store
}

// stageErr is the uniform out-of-order error: stage "want" must run before
// stage "stage" can.
func stageErr(want, stage string) error {
	return fmt.Errorf("autonetkit: %s before %s", want, stage)
}

// Design builds the protocol overlays (§4.2).
func (n *Network) Design(opts design.Options) error {
	in := n.ANM.Overlay(core.OverlayInput)
	if in == nil || in.NumNodes() == 0 {
		return stageErr("Load", "Design")
	}
	span := n.obs.StartSpan("Design")
	defer span.End()
	return design.BuildAll(n.ANM, opts)
}

// Allocate runs automatic IP allocation (§5.3), creating the ipv4 overlay.
func (n *Network) Allocate(cfg ipalloc.Config) error {
	phy := n.ANM.Overlay(core.OverlayPhy)
	if phy == nil || phy.NumNodes() == 0 {
		return stageErr("Design", "Allocate")
	}
	span := n.obs.StartSpan("Allocate")
	defer span.End()
	alloc := &ipalloc.Default{Config: cfg}
	res, err := alloc.Allocate(n.ANM)
	if err != nil {
		return err
	}
	n.Alloc = res
	return nil
}

// Compile condenses the overlays into the Resource Database (§5.4).
// Per-device compilation fans out across opts.Workers goroutines
// (GOMAXPROCS when zero) with byte-identical output at any worker count.
func (n *Network) Compile(opts compile.Options) error {
	if n.Alloc == nil {
		return stageErr("Allocate", "Compile")
	}
	span := n.obs.StartSpan("Compile")
	defer span.End()
	if opts.Obs == nil {
		opts.Obs = n.obs
	}
	db, err := compile.Compile(n.ANM, n.Alloc, opts)
	if err != nil {
		return err
	}
	n.DB = db
	return nil
}

// Render pushes the database through the template sets (§5.5) with the
// default render options.
func (n *Network) Render() error { return n.RenderWith(render.Options{}) }

// RenderWith renders with explicit options. Per-device and per-lab template
// execution fans out across opts.Workers goroutines (GOMAXPROCS when zero)
// with byte-identical output at any worker count.
func (n *Network) RenderWith(opts render.Options) error {
	if n.DB == nil {
		return stageErr("Compile", "Render")
	}
	span := n.obs.StartSpan("Render")
	defer span.End()
	if opts.Obs == nil {
		opts.Obs = n.obs
	}
	fs, err := render.RenderWith(context.Background(), n.DB, opts)
	if err != nil {
		return err
	}
	n.Files = fs
	return nil
}

// Build runs Design, Allocate, Compile and Render in sequence.
func (n *Network) Build(opts BuildOptions) error {
	if opts.Cache != nil {
		if opts.Compile.Cache == nil {
			opts.Compile.Cache = opts.Cache
		}
		if opts.Render.Cache == nil {
			opts.Render.Cache = opts.Cache
		}
	}
	if err := n.Design(opts.Design); err != nil {
		return err
	}
	if err := n.Allocate(opts.IP); err != nil {
		return err
	}
	if err := n.Compile(opts.Compile); err != nil {
		return err
	}
	return n.RenderWith(opts.Render)
}

// Deploy archives, transfers and launches the rendered lab (§5.7). A
// lenient deployment that quarantines devices surfaces the count under
// obs.CounterDevicesQuarantined in Stats.
func (n *Network) Deploy(opts deploy.Options) (*deploy.Deployment, error) {
	if n.Files == nil {
		return nil, stageErr("Render", "Deploy")
	}
	span := n.obs.StartSpan("Deploy")
	defer span.End()
	if opts.Obs == nil {
		opts.Obs = n.obs
	}
	return deploy.Run(n.Files, opts)
}

// DeployCluster deploys the rendered network across a substrate backend
// via the cluster scheduler (§3.3 multi-host deployments with reservation
// semantics): deterministic bin-packing, health probes, cordon/drain with
// live re-placement. The returned deployment's DrainHost/FailHost keep
// the lab running through substrate host maintenance and failures.
func (n *Network) DeployCluster(backend sched.Backend, opts deploy.ClusterOptions) (*deploy.ClusterDeployment, error) {
	if n.Files == nil {
		return nil, stageErr("Render", "DeployCluster")
	}
	span := n.obs.StartSpan("DeployCluster")
	defer span.End()
	if opts.Obs == nil {
		opts.Obs = n.obs
	}
	return deploy.RunCluster(n.Files, backend, opts)
}

// Measure returns a measurement client for a running lab, resolving
// addresses through this network's IP allocation table (§6.1).
func (n *Network) Measure(lab *emul.Lab) *measure.Client {
	resolve := measure.Resolver(nil)
	if n.Alloc != nil {
		table := n.Alloc.Table
		resolve = func(a netip.Addr) string { return string(table.HostForIP(a)) }
	}
	return measure.NewClient(lab, resolve)
}

// Chaos returns a scenario engine bound to a running lab: measurement
// through this network's allocation-aware client, loopback probe
// addresses from the allocation table, and the network's obs collector
// for per-step spans (§8 what-if experimentation, scripted).
func (n *Network) Chaos(lab *emul.Lab, opts chaos.Options) (*chaos.Engine, error) {
	if n.Alloc == nil {
		return nil, stageErr("Allocate", "Chaos")
	}
	if opts.Obs == nil {
		opts.Obs = n.obs
	}
	loopbacks := map[string]netip.Addr{}
	for _, e := range n.Alloc.Table.Entries() {
		if e.Loopback {
			loopbacks[string(e.Node)] = e.Addr
		}
	}
	addrOf := func(name string) netip.Addr { return loopbacks[name] }
	return chaos.NewEngine(lab, n.Measure(lab), addrOf, opts), nil
}

// ExportOverlay renders an overlay as a D3-style visualization document
// (§5.6).
func (n *Network) ExportOverlay(name string, opts viz.Options) (*viz.Doc, error) {
	ov := n.ANM.Overlay(name)
	if ov == nil {
		return nil, fmt.Errorf("autonetkit: no overlay %q", name)
	}
	return viz.ExportOverlay(ov, opts), nil
}

// SaveConfigs writes the rendered configuration tree under dir.
func (n *Network) SaveConfigs(dir string) error {
	if n.Files == nil {
		return stageErr("Render", "SaveConfigs")
	}
	return n.Files.WriteToDisk(dir)
}

// Verify runs the pre-deployment static checks (§8: "offline verification
// systems could be applied prior to deployment") over the compiled
// Resource Database.
func (n *Network) Verify() (verify.Report, error) {
	if n.DB == nil {
		return verify.Report{}, stageErr("Compile", "Verify")
	}
	return verify.Static(n.DB), nil
}

// DNS generates the allocation-consistent DNS zones for the network
// (§3.3).
func (n *Network) DNS(cfg dns.Config) (dns.Zones, error) {
	if n.Alloc == nil {
		return dns.Zones{}, stageErr("Allocate", "DNS")
	}
	return dns.Generate(n.ANM, n.Alloc, cfg)
}
