package autonetkit

import (
	"context"
	"net/netip"
	"sort"
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/tmpl"
	"autonetkit/internal/topogen"
)

// movedDevices diffs two digest snapshots into the sorted list of devices
// whose compile digest moved.
func movedDevices(before, after map[graph.ID]cache.Digest) []string {
	var out []string
	for id, d := range after {
		if before[id] != d {
			out = append(out, string(id))
		}
	}
	sort.Strings(out)
	return out
}

// TestCacheInvalidationMatrix mutates one attribute of each model layer —
// a node, an edge, an overlay, a template, an allocated IP block — and
// asserts via the obs counters that exactly the dependent devices miss the
// compile (or render) cache while everything else hits.
func TestCacheInvalidationMatrix(t *testing.T) {
	store := cache.NewMemory()
	net := buildCached(t, topogen.SmallInternet(), store, 1)
	n := int64(net.DB.Len())
	digests := compileDigests(net)

	// recompile reruns the compile stage against the warm store and returns
	// the counters of just that run.
	recompile := func(t *testing.T) map[string]int64 {
		t.Helper()
		col := obs.NewCollector()
		_, err := compile.Compile(net.ANM, net.Alloc, compile.Options{Cache: store, Obs: col})
		if err != nil {
			t.Fatal(err)
		}
		return col.Snapshot().Counters
	}

	// Each step mutates the current model state; the store stays warm for
	// whatever the previous step produced, so every run's misses are
	// attributable to exactly one mutation.
	steps := []struct {
		name   string
		mutate func(t *testing.T)
		want   []string // exact set of devices that must miss
	}{
		{
			name: "node-attribute",
			mutate: func(t *testing.T) {
				ospf := net.ANM.Overlay(design.OverlayOSPF)
				nd := ospf.Node("as100r2")
				if err := nd.Set(design.AttrBackbone, !nd.GetBool(design.AttrBackbone)); err != nil {
					t.Fatal(err)
				}
			},
			want: []string{"as100r2"},
		},
		{
			name: "edge-attribute",
			mutate: func(t *testing.T) {
				ospf := net.ANM.Overlay(design.OverlayOSPF)
				if err := ospf.Edge("as20r1", "as20r2").Set(design.AttrCost, 77); err != nil {
					t.Fatal(err)
				}
			},
			want: []string{"as20r1", "as20r2"},
		},
		{
			name: "ip-block",
			mutate: func(t *testing.T) {
				net.Alloc.InfraBlocks[100] = netip.MustParsePrefix("172.16.0.0/16")
			},
			want: []string{"as100r1", "as100r2", "as100r3"},
		},
		{
			name: "overlay-attribute",
			mutate: func(t *testing.T) {
				net.ANM.Overlay(design.OverlayOSPF).Set("matrix_probe", 1)
			},
			want: nil, // nil means "every device"
		},
	}

	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			step.mutate(t)
			after := compileDigests(net)
			moved := movedDevices(digests, after)
			digests = after

			want := step.want
			if want == nil {
				for _, nd := range net.ANM.Overlay(core.OverlayPhy).Routers() {
					want = append(want, string(nd.ID()))
				}
				sort.Strings(want)
			}
			if len(moved) != len(want) {
				t.Fatalf("digest oracle moved %v, want %v", moved, want)
			}
			for i := range want {
				if moved[i] != want[i] {
					t.Fatalf("digest oracle moved %v, want %v", moved, want)
				}
			}

			c := recompile(t)
			if c[obs.CounterCompileCacheMisses] != int64(len(want)) {
				t.Errorf("compile misses = %d, want %d (%v)",
					c[obs.CounterCompileCacheMisses], len(want), want)
			}
			if c[obs.CounterCompileCacheHits] != n-int64(len(want)) {
				t.Errorf("compile hits = %d, want %d", c[obs.CounterCompileCacheHits], n-int64(len(want)))
			}
		})
	}

	// Template identity: a compile-side no-op that must invalidate every
	// rendered device of the affected syntax, and only the render layer.
	t.Run("template", func(t *testing.T) {
		// Warm the render store for the current (post-mutation) model state.
		db, err := compile.Compile(net.ANM, net.Alloc, compile.Options{Cache: store})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := render.RenderWith(context.Background(), db, render.Options{Cache: store}); err != nil {
			t.Fatal(err)
		}

		prev := render.ReplaceDeviceTemplates("quagga", append(
			[]render.DeviceTemplate{{RelPath: "etc/quagga/zebra.conf", When: "zebra",
				Template: tmpl.MustParse("quagga/zebra.conf", "! matrix\nhostname ${node.zebra.hostname}\n")}},
			render.DeviceTemplates("quagga")[1:]...))
		defer render.ReplaceDeviceTemplates("quagga", prev)

		col := obs.NewCollector()
		if _, err := render.RenderWith(context.Background(), db, render.Options{Cache: store, Obs: col}); err != nil {
			t.Fatal(err)
		}
		c := col.Snapshot().Counters
		if c[obs.CounterRenderCacheMisses] != n || c[obs.CounterRenderCacheHits] != 0 {
			t.Errorf("post-template-edit render hits/misses = %d/%d, want 0/%d",
				c[obs.CounterRenderCacheHits], c[obs.CounterRenderCacheMisses], n)
		}
		// The compile digests must not have moved: template identity is a
		// render-only input.
		if moved := movedDevices(digests, compileDigests(net)); len(moved) != 0 {
			t.Errorf("template edit moved compile digests of %v", moved)
		}
	})
}
