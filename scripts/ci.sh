#!/usr/bin/env bash
# CI gate: vet, build, race-enabled tests (includes the worker-pool
# determinism test), and an explicit golden-output diff of the Fig. 5
# pipeline against testdata/golden_fig5.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== golden output diff (testdata/golden_fig5)"
go test -race -run 'TestGoldenFig5Tree' -count=1 .

echo "== golden chaos scenario (testdata/chaos/link_outage)"
go run ./cmd/ankchaos -in testdata/small_internet.graphml \
  -scenario testdata/chaos/link_outage.chaos > /tmp/ci_chaos_report.$$
diff -u testdata/chaos/link_outage.report /tmp/ci_chaos_report.$$
rm -f /tmp/ci_chaos_report.$$

echo "== golden partial-boot drill (testdata/quarantine)"
go test -race -run 'TestGoldenQuarantineDrill' -count=1 .

echo "== fuzz (parsers, 5s each)"
for target in FuzzParseQuagga FuzzParseIOS FuzzParseJunos FuzzParseCBGP; do
  go test -run=NONE -fuzz="^${target}\$" -fuzztime=5s ./internal/emul/
done
go test -run=NONE -fuzz='^FuzzParseScenario$' -fuzztime=5s ./internal/chaos/
go test -run=NONE -fuzz='^FuzzTextFSM$' -fuzztime=5s ./internal/measure/textfsm/

echo "CI OK"
