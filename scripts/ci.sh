#!/usr/bin/env bash
# CI gate: vet, build, race-enabled tests (includes the worker-pool
# determinism test), and an explicit golden-output diff of the Fig. 5
# pipeline against testdata/golden_fig5.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (shuffled: catches inter-test order dependence)"
go test -race -shuffle=on ./...

echo "== golden output diff (testdata/golden_fig5)"
go test -race -run 'TestGoldenFig5Tree' -count=1 .

echo "== golden chaos scenario (testdata/chaos/link_outage)"
go run ./cmd/ankchaos -in testdata/small_internet.graphml \
  -scenario testdata/chaos/link_outage.chaos > /tmp/ci_chaos_report.$$
diff -u testdata/chaos/link_outage.report /tmp/ci_chaos_report.$$
rm -f /tmp/ci_chaos_report.$$

echo "== golden scheduler drill (testdata/sched/drill)"
go run ./cmd/anksched -script testdata/sched/drill.sched -seed 2013 > /tmp/ci_sched_report.$$
diff -u testdata/sched/drill.report /tmp/ci_sched_report.$$
rm -f /tmp/ci_sched_report.$$

echo "== golden scheduler drain drill (testdata/sched/drain_drill; Workers=1 vs Workers=8 determinism)"
go test -race -run 'TestGoldenSchedDrainDrill' -count=1 .

echo "== journal recovery drill (testdata/journal; uncrashed vs split-across-processes byte identity)"
state_dir=$(mktemp -d /tmp/ci_journal.XXXXXX)
cat testdata/journal/ops.sched testdata/journal/status.sched \
  | go run ./cmd/anksched -script - -hosts 4 -cap 6 -seed 2013 > /tmp/ci_journal_whole.$$
go run ./cmd/anksched -script testdata/journal/ops.sched -hosts 4 -cap 6 -seed 2013 \
  -state-dir "$state_dir" -snapshot-every 3 > /tmp/ci_journal_part1.$$ 2>/dev/null
go run ./cmd/anksched -script testdata/journal/status.sched -hosts 4 -cap 6 -seed 2013 \
  -state-dir "$state_dir" > /tmp/ci_journal_part2.$$ 2>/dev/null
cat /tmp/ci_journal_part1.$$ /tmp/ci_journal_part2.$$ | diff -u /tmp/ci_journal_whole.$$ -
diff -u testdata/journal/drill.status /tmp/ci_journal_part2.$$
rm -rf "$state_dir" /tmp/ci_journal_whole.$$ /tmp/ci_journal_part1.$$ /tmp/ci_journal_part2.$$

echo "== golden scheduler crash drill (testdata/journal/crash_drill; crash-sched under a running lab)"
go test -race -run 'TestGoldenSchedCrashDrill|TestAnkschedStateDirByteIdentity' -count=1 .

echo "== scheduler crash-point matrix (every journal I/O step, -race; includes crash mid-preemption and mid-lease-expiry)"
go test -race -run 'TestSchedCrashMatrix|TestReplayEquivalenceProperty|TestCrashMidPreemption|TestCrashMidLeaseExpiry' -count=1 ./internal/sched/
go test -race -run 'TestJournalCrashMatrix' -count=1 ./internal/journal/

echo "== golden lease drill (testdata/lease/hostile; leases + preemption, uncrashed vs split-across-processes byte identity)"
state_dir=$(mktemp -d /tmp/ci_lease.XXXXXX)
lease_args=(-hosts 4 -cap 8 -seed 2013 -lease -preempt)
cat testdata/lease/hostile.sched testdata/lease/status.sched \
  | go run ./cmd/anksched -script - "${lease_args[@]}" | diff -u testdata/lease/hostile.report -
go run ./cmd/anksched -script testdata/lease/hostile.sched "${lease_args[@]}" \
  -state-dir "$state_dir" -snapshot-every 5 > /tmp/ci_lease_part1.$$ 2>/dev/null
go run ./cmd/anksched -script testdata/lease/status.sched "${lease_args[@]}" \
  -state-dir "$state_dir" > /tmp/ci_lease_part2.$$ 2>/dev/null
cat /tmp/ci_lease_part1.$$ /tmp/ci_lease_part2.$$ | diff -u testdata/lease/hostile.report -
rm -rf "$state_dir" /tmp/ci_lease_part1.$$ /tmp/ci_lease_part2.$$

echo "== golden lease chaos drill (testdata/lease/lease_drill; silence-host under a running lab, Workers=1 vs Workers=8 determinism)"
go test -race -run 'TestGoldenLeaseDrill' -count=1 .

echo "== golden partial-boot drill (testdata/quarantine)"
go test -race -run 'TestGoldenQuarantineDrill' -count=1 .

echo "== golden perturbation drill (testdata/perturb; Workers=1 vs Workers=8 determinism)"
go test -race -run 'TestGoldenPerturbDrill' -count=1 .

echo "== cache-warm pass (go test -count=2: second run rebuilds against warm state)"
go test -count=2 -run 'TestCachePipelineProperty|TestCacheInvalidationMatrix|TestLenientBootDoesNotPoisonCache|TestRepeatedBuildByteDeterminism|TestCompileCacheHitProducesIdenticalDB|TestRenderCacheWarmIsByteIdentical' \
  . ./internal/compile/ ./internal/render/ ./internal/cache/

echo "== coverage gate (floor 80%)"
go test -count=1 -coverprofile=/tmp/ci_cover.$$ ./... > /dev/null
total=$(go tool cover -func=/tmp/ci_cover.$$ | awk '/^total:/ { gsub(/%/, "", $3); print $3 }')
rm -f /tmp/ci_cover.$$
awk -v t="$total" 'BEGIN {
  if (t + 0 < 80.0) { print "coverage " t "% is below the 80% floor"; exit 1 }
  print "coverage " t "% (floor 80%)"
}'

echo "== golden incremental drill (testdata/incremental; full vs incremental, Workers=1 vs 8)"
go test -race -run 'TestGoldenIncrementalDrill' -count=1 .

echo "== incremental convergence parity (byte-identical reports/events across modes)"
go test -run 'TestIncrementalConvergenceParity' -count=1 .

echo "== golden sharded drill (testdata/shards; -shards 4 vs -shards 1 byte identity)"
go test -race -run 'TestGoldenShardDrill|TestShardPartitionProperty' -count=1 .

echo "== sharded convergence parity (-race; byte-identical reports/events/RIBs/FIBs across the shard x worker x incremental cross-product; ANK_SHARDS pins the wide shard count)"
ANK_SHARDS="${ANK_SHARDS:-4}" go test -race -run 'TestShardedConvergenceParity|TestShardWatchdogMeasureRace' -count=1 .

echo "== incremental rebuild benchmark (cold vs warm)"
go test -run 'NONE' -bench 'BenchmarkP4_IncrementalRebuild' -benchtime 3x .

echo "== incremental convergence benchmark (full vs incremental reconvergence)"
go test -run 'NONE' -bench 'BenchmarkP6_IncrementalConvergence' -benchtime 1x .

echo "== sharded convergence benchmark (serial vs sharded round evaluation, 240 routers)"
go test -run 'NONE' -bench 'BenchmarkP9_ShardedConvergence/n240' -benchtime 1x .

echo "== scheduler placement + drain benchmark (42-AS / 1158-router scale)"
go test -run 'NONE' -bench 'BenchmarkP7_SchedulerDrain' -benchtime 1x .

echo "== journal append + crash-recovery benchmark (1158-router scale)"
go test -run 'NONE' -bench 'BenchmarkP8_(JournalAppend|SchedulerRecovery)' -benchtime 1x .

echo "== preemption-under-churn + lease-round benchmark (1158-router / 36-host scale)"
go test -run 'NONE' -bench 'BenchmarkP10_PreemptionUnderChurn' -benchtime 1x .

echo "== fuzz (parsers, 5s each)"
for target in FuzzParseQuagga FuzzParseIOS FuzzParseJunos FuzzParseCBGP; do
  go test -run=NONE -fuzz="^${target}\$" -fuzztime=5s ./internal/emul/
done
for target in FuzzParseScenario FuzzParsePerturb; do
  go test -run=NONE -fuzz="^${target}\$" -fuzztime=5s ./internal/chaos/
done
go test -run=NONE -fuzz='^FuzzParseSpec$' -fuzztime=5s ./internal/sched/
go test -run=NONE -fuzz='^FuzzJournalDecode$' -fuzztime=5s ./internal/journal/
go test -run=NONE -fuzz='^FuzzTextFSM$' -fuzztime=5s ./internal/measure/textfsm/

echo "CI OK"
