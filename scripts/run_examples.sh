#!/bin/sh
# Run every example in sequence (each is self-contained and offline).
set -e
for ex in quickstart smallinternet nren badgadget rpki services whatif; do
    echo "=== examples/$ex ==="
    go run "./examples/$ex"
    echo
done
