package autonetkit

// Smoke tests for the executables: each command is compiled and run against
// the shipped Small-Internet GraphML fixture, asserting on its output.
// Gated behind -short because compiling five binaries takes a few seconds.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one command into a temp dir and returns the binary
// path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

const fixture = "testdata/small_internet.graphml"

func TestCmdAnkbuild(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "ankbuild")
	outDir := t.TempDir()
	out, err := runCmd(t, bin, "-in", fixture, "-out", outDir, "-verify")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"loaded 14 devices", "verification passed", "rendered"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(filepath.Join(outDir, "localhost", "netkit", "lab.conf")); err != nil {
		t.Errorf("lab.conf not written: %v", err)
	}
	// Missing -in exits non-zero.
	if _, err := runCmd(t, bin); err == nil {
		t.Error("ankbuild without -in succeeded")
	}
	// -trace prints the pipeline span tree and counters; -workers picks the
	// pool size without changing output.
	out, err = runCmd(t, bin, "-in", fixture, "-out", t.TempDir(), "-workers", "4", "-trace")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"pipeline trace:", "Compile", "Render", "counters:", "devices_compiled", "files_rendered"} {
		if !strings.Contains(out, want) {
			t.Errorf("-trace output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAnkdeploy(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "ankdeploy")
	out, err := runCmd(t, bin, "-in", fixture)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"[archive]", "[lstart]", "lab running: 14 machines", "BGP converged"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAnkmeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "ankmeasure")
	out, err := runCmd(t, bin, "-in", fixture, "-src", "as300r2", "-dst", "as100r2")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "[as300r2, as40r1, as1r1, as20r3, as20r2, as100r1, as100r2]") {
		t.Errorf("paper path missing:\n%s", out)
	}
	out, err = runCmd(t, bin, "-in", fixture, "-validate")
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "matches design") {
		t.Errorf("validation output:\n%s", out)
	}
}

func TestCmdAnkviz(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "ankviz")
	htmlPath := filepath.Join(t.TempDir(), "ebgp.html")
	out, err := runCmd(t, bin, "-in", fixture, "-overlay", "ebgp", "-out", htmlPath)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	b, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "<!DOCTYPE html>") || !strings.Contains(string(b), "as1r1") {
		t.Error("html output wrong")
	}
	// JSON to stdout.
	out, err = runCmd(t, bin, "-in", fixture, "-overlay", "ospf")
	if err != nil || !strings.Contains(out, `"name": "ospf"`) {
		t.Errorf("json output: %v\n%s", err, out)
	}
}

func TestCmdAnkchaos(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "ankchaos")
	scenario := filepath.Join("testdata", "chaos", "link_outage.chaos")
	out, err := runCmd(t, bin, "-in", fixture, "-scenario", scenario)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// The report output is deterministic: diff against the golden file.
	golden, err := os.ReadFile(filepath.Join("testdata", "chaos", "link_outage.report"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("report differs from golden:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
	// A violated assertion exits 1 with an error finding.
	bad := filepath.Join(t.TempDir(), "bad.chaos")
	if err := os.WriteFile(bad, []byte("fail-node as20r3\ncheck reachable as1r1 as20r3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCmd(t, bin, "-in", fixture, "-scenario", bad)
	if err == nil {
		t.Errorf("violated check exited 0:\n%s", out)
	}
	if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "[error] chaos-check") {
		t.Errorf("violation not reported:\n%s", out)
	}
	// Missing flags exit non-zero.
	if _, err := runCmd(t, bin, "-in", fixture); err == nil {
		t.Error("ankchaos without -scenario succeeded")
	}
	// -trace appends the span tree with the chaos steps.
	out, err = runCmd(t, bin, "-in", fixture, "-scenario", scenario, "-trace")
	if err != nil {
		t.Fatalf("-trace: %v\n%s", err, out)
	}
	for _, want := range []string{"pipeline trace:", "Chaos", "chaos_steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("-trace output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAnknren(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "anknren")
	out, err := runCmd(t, bin, "-ases", "4", "-routers", "24", "-links", "30")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "24") || !strings.Contains(out, "30") {
		t.Errorf("table missing sizes:\n%s", out)
	}
}

func TestCmdAnksched(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test")
	}
	bin := buildCmd(t, "anksched")
	script := filepath.Join("testdata", "sched", "drill.sched")
	out, err := runCmd(t, bin, "-script", script, "-seed", "2013")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// The drill output is deterministic: diff against the golden file.
	golden, err := os.ReadFile(filepath.Join("testdata", "sched", "drill.report"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("report differs from golden:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
	// -eval runs one command against a -hosts/-cap uniform pool; -json
	// renders the status snapshot as JSON.
	out, err = runCmd(t, bin, "-hosts", "4", "-cap", "8", "-json", "-eval", "reserve web vms=6 policy=spread")
	if err != nil {
		t.Fatalf("-eval: %v\n%s", err, out)
	}
	for _, want := range []string{`"reservations"`, `"name": "web"`, `"state": "active"`} {
		if !strings.Contains(out, want) {
			t.Errorf("-eval -json output missing %q:\n%s", want, out)
		}
	}
	// A drill left with queued demand exits 3.
	if _, err := runCmd(t, bin, "-hosts", "1", "-cap", "2", "-eval", "reserve big vms=5"); err == nil {
		t.Error("queued reservation exited 0")
	}
	// Missing script exits non-zero.
	if _, err := runCmd(t, bin); err == nil {
		t.Error("anksched without -script succeeded")
	}
	// Malformed script lines carry file:line positions.
	bad := filepath.Join(t.TempDir(), "bad.sched")
	if err := os.WriteFile(bad, []byte("host h1 4\nreserve web spread=zero\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := runCmd(t, bin, "-script", bad); err == nil || !strings.Contains(out, "bad.sched:2:") {
		t.Errorf("bad spec not located (err=%v):\n%s", err, out)
	}
}
