package autonetkit

// Cross-package integration tests exercising interactions that no single
// package test covers: multi-host placement, DNS-driven measurement,
// pre-deployment verification through the facade, and a property-based
// sweep of random topologies through the entire pipeline.

import (
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"strings"
	"testing"

	"autonetkit/internal/core"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/emul"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/measure"
	"autonetkit/internal/services/dns"
	"autonetkit/internal/topogen"
)

// Multi-host labs: devices carrying different host attributes compile into
// separate lab trees; the links crossing hosts are the ones needing GRE
// tunnels (§5.4 "cross-emulation platform connections").
func TestMultiHostPlacement(t *testing.T) {
	g := topogen.Fig5()
	// AS1 on hostA, AS2's r5 on hostB.
	for _, n := range g.Nodes() {
		host := "hosta"
		if n.ID() == "r5" {
			host = "hostb"
		}
		n.Set(core.AttrHost, host)
	}
	net, err := LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	// Two lab.conf files, one per host.
	if _, ok := net.Files.Read("hosta/netkit/lab.conf"); !ok {
		t.Error("hosta lab.conf missing")
	}
	if _, ok := net.Files.Read("hostb/netkit/lab.conf"); !ok {
		t.Error("hostb lab.conf missing")
	}
	// Cross-host links: exactly the two inter-AS links (r3-r5, r4-r5).
	placement := deploy.Placement{}
	for _, d := range net.DB.Devices() {
		placement[string(d.ID)] = d.GetString("host", "")
	}
	var links [][2]string
	for _, l := range net.DB.Links() {
		links = append(links, [2]string{string(l.A), string(l.B)})
	}
	cross := deploy.CrossHostLinks(placement, links)
	if len(cross) != 2 {
		t.Fatalf("cross-host links = %v, want 2", cross)
	}
	for _, c := range cross {
		if c[1] != "r5" && c[0] != "r5" {
			t.Errorf("unexpected cross-host link %v", c)
		}
	}
}

// The DNS service resolves measurement output: traceroute hops translated
// through the generated zones instead of the raw allocation table (§3.3 +
// §6.1 combined).
func TestDNSResolvedTraceroute(t *testing.T) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	zones, err := net.DNS(dns.Config{})
	if err != nil {
		t.Fatal(err)
	}
	resolver := dns.NewResolver(zones)
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	client := measure.NewClient(dep.Lab(), func(a netip.Addr) string {
		return resolver.HostPart(a)
	})
	var dst netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Node == "as100r2" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	tr, err := client.RunTraceroute("as300r2", dst)
	if err != nil || !tr.Reached {
		t.Fatalf("traceroute: %v %+v", err, tr)
	}
	want := []string{"as300r2", "as40r1", "as1r1", "as20r3", "as20r2", "as100r1", "as100r2"}
	if got := strings.Join(tr.Path(), ","); got != strings.Join(want, ",") {
		t.Errorf("DNS-resolved path = %v, want %v", tr.Path(), want)
	}
}

// Facade verification: the clean pipeline passes; a sabotaged database is
// caught before deployment.
func TestFacadeVerify(t *testing.T) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Verify(); err == nil {
		t.Error("Verify before Compile accepted")
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	report, err := net.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("clean build flagged:\n%s", report)
	}
	// Sabotage and re-verify.
	lb, _ := net.DB.Device("as1r1").Get("loopback.ip")
	net.DB.Device("as20r1").MustSet("loopback.ip", lb)
	report, _ = net.Verify()
	if report.OK() {
		t.Error("duplicate loopback undetected through facade")
	}
}

// Incident injection through the facade-built lab: after failing the only
// path, validation reports the missing adjacency (incident + E12 loop).
func TestIncidentThenValidationDetectsDrift(t *testing.T) {
	net, err := LoadGraph(topogen.Fig5())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	if err := lab.FailLink("r1", "r2"); err != nil {
		t.Fatal(err)
	}
	client := net.Measure(lab)
	measured, err := client.MeasuredOSPFGraph(lab.VMNames())
	if err != nil {
		t.Fatal(err)
	}
	diff := measure.Compare(net.ANM.Overlay(design.OverlayOSPF).Graph(), measured)
	if diff.OK() {
		t.Fatal("design-vs-measured agreed despite the incident")
	}
	if len(diff.MissingEdges) != 1 || diff.MissingEdges[0] != [2]graph.ID{"r1", "r2"} {
		t.Errorf("missing = %v", diff.MissingEdges)
	}
}

// randomConnectedTopo builds a random connected multi-AS topology in which
// every AS is internally contiguous — the structural precondition real BGP
// imposes: a partitioned AS cannot learn its own routes back across another
// AS (loop prevention strips them), so contiguity is part of any sane
// design, and the paper's design rules assume it too.
func randomConnectedTopo(rng *rand.Rand, routers, ases int) *graph.Graph {
	g := graph.New()
	perAS := make([][]graph.ID, ases)
	idx := 0
	for asn := 1; asn <= ases; asn++ {
		n := routers / ases
		if asn <= routers%ases {
			n++
		}
		for j := 0; j < n; j++ {
			id := graph.ID(fmt.Sprintf("n%02d", idx))
			idx++
			g.AddNode(id, graph.Attrs{
				core.AttrASN:        asn,
				core.AttrDeviceType: core.DeviceRouter,
			})
			members := perAS[asn-1]
			if j > 0 {
				// Intra-AS random tree keeps the AS contiguous.
				g.AddEdge(members[rng.Intn(len(members))], id, graph.Attrs{"type": "physical"})
			}
			perAS[asn-1] = append(members, id)
		}
	}
	// Chain the ASes so the whole topology is connected.
	for a := 1; a < ases; a++ {
		u := perAS[a-1][rng.Intn(len(perAS[a-1]))]
		v := perAS[a][rng.Intn(len(perAS[a]))]
		g.AddEdge(u, v, graph.Attrs{"type": "physical"})
	}
	// Extra random edges anywhere.
	all := g.NodeIDs()
	for k := 0; k < routers/2; k++ {
		a, b := all[rng.Intn(len(all))], all[rng.Intn(len(all))]
		if a != b && !g.HasEdge(a, b) {
			g.AddEdge(a, b, graph.Attrs{"type": "physical"})
		}
	}
	return g
}

// Property: any random connected topology survives the full pipeline, BGP
// converges (full-mesh iBGP is cycle-free), every loopback is pingable
// from every router, and the verification suite passes. This is the
// paper's repeatability requirement exercised over the whole system.
func TestPropertyRandomTopologiesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline sweep")
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		routers := 4 + rng.Intn(8)
		ases := 1 + rng.Intn(3)
		g := randomConnectedTopo(rng, routers, ases)
		net, err := LoadGraph(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Build(BuildOptions{}); err != nil {
			t.Fatalf("trial %d (r=%d a=%d): %v", trial, routers, ases, err)
		}
		if report, _ := net.Verify(); !report.OK() {
			t.Fatalf("trial %d: verification failed:\n%s", trial, report)
		}
		dep, err := net.Deploy(deploy.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lab := dep.Lab()
		if !lab.BGPResult().Converged {
			t.Fatalf("trial %d: BGP did not converge: %+v", trial, lab.BGPResult())
		}
		assertFullLoopbackReachability(t, trial, lab, net)
	}
}

func assertFullLoopbackReachability(t *testing.T, trial int, lab *emul.Lab, net *Network) {
	t.Helper()
	var loopbacks []netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Loopback {
			loopbacks = append(loopbacks, e.Addr)
		}
	}
	for _, src := range lab.VMNames() {
		for _, lb := range loopbacks {
			out, err := lab.Exec(src, "ping -c 1 "+lb.String())
			if err != nil {
				t.Fatalf("trial %d: ping error: %v", trial, err)
			}
			if !strings.Contains(out, " 1 received") {
				t.Fatalf("trial %d: %s cannot reach %v:\n%s\nevents:\n%s",
					trial, src, lb, out, strings.Join(lab.Events(), "\n"))
			}
		}
	}
}

// ipalloc import is used via net.Alloc type assertions above; keep the
// linter explicit.
var _ = ipalloc.AttrLoopback

// A mid-scale deployment: ~100 routers in 6 ASes boot, converge, and
// forward across the whole fabric — the emulated analogue of the paper's
// "networks of over 1,000 routers ... have been created and run" claim,
// sized for CI.
func TestMidScaleDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale deployment")
	}
	g, err := topogen.NREN(topogen.NRENConfig{ASes: 6, Routers: 100, Links: 130})
	if err != nil {
		t.Fatal(err)
	}
	net, err := LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Route reflectors keep the big ASes' session counts sane.
	if err := net.Build(BuildOptions{Design: design.Options{RouteReflectors: true}}); err != nil {
		t.Fatal(err)
	}
	if report, _ := net.Verify(); !report.OK() {
		t.Fatalf("verification failed:\n%s", report)
	}
	dep, err := net.Deploy(deploy.Options{MaxBGPRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	if !lab.BGPResult().Converged {
		t.Fatalf("bgp = %+v", lab.BGPResult())
	}
	// Sample loopback reachability across AS boundaries.
	rng := rand.New(rand.NewSource(7))
	var loopbacks []netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Loopback {
			loopbacks = append(loopbacks, e.Addr)
		}
	}
	names := lab.VMNames()
	for i := 0; i < 40; i++ {
		src := names[rng.Intn(len(names))]
		dst := loopbacks[rng.Intn(len(loopbacks))]
		out, err := lab.Exec(src, "ping -c 1 "+dst.String())
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, " 1 received") {
			t.Fatalf("%s cannot reach %v:\n%s", src, dst, out)
		}
	}
}

// Full-scale deployment: the paper's "networks of over 1,000 routers ...
// have been created and run" (§1), on this substrate. ~100 s wall time, so
// gated behind ANK_FULLSCALE=1.
func TestFullScaleNRENDeployment(t *testing.T) {
	if os.Getenv("ANK_FULLSCALE") == "" {
		t.Skip("set ANK_FULLSCALE=1 to run the 1158-router deployment (~100s)")
	}
	g, err := topogen.NREN(topogen.DefaultNREN())
	if err != nil {
		t.Fatal(err)
	}
	net, err := LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{Design: design.Options{RouteReflectors: true}}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{MaxBGPRounds: 500})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	if len(lab.VMNames()) != 1158 {
		t.Fatalf("machines = %d", len(lab.VMNames()))
	}
	if !lab.BGPResult().Converged {
		t.Fatalf("bgp = %+v", lab.BGPResult())
	}
}
