package autonetkit

import (
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"autonetkit/internal/chaos"
	"autonetkit/internal/compile"
	"autonetkit/internal/deploy"
	"autonetkit/internal/emul"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/routing"
)

// Byte-identity harness for parallel sharded BGP convergence: the per-AS
// sharded round driver (internal/routing/shard.go) must reproduce the
// sequential Gauss–Seidel sweep exactly — reports, event logs, RIBs and
// FIBs — at any shard worker count, any build worker count, with and
// without incremental reconvergence, under any perturbation seed, through
// incidents, a partition and a watchdog quarantine.

// shardTestCounts returns the shard worker counts the parity tests sweep:
// 1 (the sequential baseline), 4, and NumCPU — the last overridable with
// ANK_SHARDS, the CI knob for pinning a specific width.
func shardTestCounts(t *testing.T) []int {
	t.Helper()
	wide := runtime.NumCPU()
	if env := os.Getenv("ANK_SHARDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("bad ANK_SHARDS=%q", env)
		}
		wide = n
	}
	counts := []int{1, 4}
	if wide != 1 && wide != 4 {
		counts = append(counts, wide)
	}
	return counts
}

// shardParityScenario extends the incremental-parity scenario with a
// partition round (AS200's single router is cut from every neighbour, then
// re-attached) and a non-recoverable flap storm that drives the watchdog
// ladder all the way to quarantine — so the oracle covers incident,
// partition and quarantine reconvergences, perturbed and clean alike.
func shardParityScenario(seed uint64) string {
	return fmt.Sprintf(`name shard parity
seed %d

fail-link as20r2 as20r3
check
restore-link as20r2 as20r3
check baseline

perturb delay 2 on as1r1:as20r3
check converged
perturb clear

fail-node as300r1
check
restore-node as300r1
check baseline

partition as200r1
check
restore-node as200r1
check baseline

perturb flap as30r1:as300r1 every 1
perturb clear
`, seed)
}

// runShardScenario builds the Small-Internet fixture, deploys it with the
// given build-worker count, shard worker count and convergence mode, runs
// the scenario, and returns the rendered report, the lab event log, a
// combined RIB+FIB dump of every machine, and the network's counters.
func runShardScenario(t *testing.T, workers, shards int, incremental bool, scenario string) (report, events, tables string, stats obs.Stats) {
	t.Helper()
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{
		Compile: compile.Options{Workers: workers},
		Render:  render.Options{Workers: workers},
	}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{Incremental: incremental, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	sc, diags := chaos.ParseScenarioFile(strings.NewReader(scenario), "shard-parity.chaos")
	if diags.HasErrors() {
		t.Fatalf("scenario diagnostics:\n%s", diags)
	}
	eng, err := net.Chaos(dep.Lab(), chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scenario produced error findings:\n%s", rep)
	}
	return rep.String() + "\n", strings.Join(dep.Lab().Events(), "\n"),
		ribFibDump(dep.Lab()), net.Stats()
}

// ribFibDump renders every machine's BGP RIB and forwarding table (the
// emulated `show ip bgp` / `show ip route`) into one deterministic blob.
// Quarantined machines render their (deterministic) exec error instead.
func ribFibDump(lab *emul.Lab) string {
	var sb strings.Builder
	for _, name := range lab.VMNames() {
		for _, cmd := range []string{"show ip bgp", "show ip route"} {
			out, err := lab.Exec(name, cmd)
			if err != nil {
				out = "error: " + err.Error()
			}
			fmt.Fprintf(&sb, "=== %s: %s ===\n%s\n", name, cmd, out)
		}
	}
	return sb.String()
}

// The tentpole's correctness bar: sharded ≡ sequential, byte for byte, on
// reports, event logs, RIBs and FIBs, across the full cross-product
// Shards∈{1,4,NumCPU} × build Workers∈{1,8} × three perturbation seeds,
// with incremental × sharded composition checked at every sharded width.
// Obs counters prove the parallel path actually ran (and stayed off for
// the shards=1 runs).
func TestShardedConvergenceParity(t *testing.T) {
	shardCounts := shardTestCounts(t)
	for _, seed := range []uint64{1337, 2024, 777} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			scenario := shardParityScenario(seed)
			wantReport, wantEvents, wantTables, _ := runShardScenario(t, 1, 1, false, scenario)
			for _, shards := range shardCounts {
				for _, workers := range []int{1, 8} {
					for _, incremental := range []bool{false, true} {
						if shards == 1 && workers == 1 && !incremental {
							continue // the baseline itself
						}
						if incremental && workers == 1 && shards != 1 {
							continue // incremental × sharded is covered at workers=8
						}
						label := fmt.Sprintf("shards=%d workers=%d incremental=%v", shards, workers, incremental)
						report, events, tables, stats := runShardScenario(t, workers, shards, incremental, scenario)
						if report != wantReport {
							t.Errorf("%s: report differs from sequential baseline:\n--- got ---\n%s--- want ---\n%s",
								label, report, wantReport)
						}
						if events != wantEvents {
							t.Errorf("%s: lab events differ from sequential baseline:\n--- got ---\n%s\n--- want ---\n%s",
								label, events, wantEvents)
						}
						if tables != wantTables {
							t.Errorf("%s: RIB/FIB dump differs from sequential baseline:\n--- got ---\n%s\n--- want ---\n%s",
								label, tables, wantTables)
						}
						// The parity would hold vacuously if the parallel
						// driver never engaged.
						if shards > 1 {
							for _, c := range []string{obs.CounterBGPShards, obs.CounterShardRoundsParallel, obs.CounterCrossShardAdverts} {
								if stats.Counters[c] == 0 {
									t.Errorf("%s: counter %s = 0, sharded path never ran", label, c)
								}
							}
						} else if n := stats.Counters[obs.CounterShardRoundsParallel]; n != 0 {
							t.Errorf("%s: sequential run evaluated %d parallel rounds", label, n)
						}
						if incremental && stats.Counters[obs.CounterBGPSpeakersRestored] == 0 {
							t.Errorf("%s: bgp_speakers_restored = 0, replay never engaged", label)
						}
					}
				}
			}
		})
	}
}

// Shard partitioning must be a true partition of the speakers — every
// speaker in exactly one shard (multiset equality against Speakers()),
// shards grouped by ASN — and the cut edges must be exactly the eBGP
// sessions: every cut pair crosses ASes, and no established inter-AS
// session is missing from the cut set.
func TestShardPartitionProperty(t *testing.T) {
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	var devices []*routing.DeviceConfig
	asnOf := map[string]int{}
	for _, name := range lab.VMNames() {
		vm, ok := lab.VM(name)
		if !ok || vm.Config == nil {
			continue
		}
		devices = append(devices, vm.Config)
		if vm.Config.BGP != nil {
			asnOf[name] = vm.Config.BGP.ASN
		}
	}
	eng, err := routing.NewBGPEngine(devices, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	shards, cuts := eng.ShardLayout()
	if len(shards) != eng.ShardCount() {
		t.Fatalf("ShardLayout returned %d shards, ShardCount says %d", len(shards), eng.ShardCount())
	}
	if len(shards) < 2 {
		t.Fatalf("fixture should shard into multiple ASes, got %d", len(shards))
	}
	// Multiset equality: the shards' speakers, concatenated and sorted,
	// are exactly Speakers() (which is sorted and duplicate-free).
	var all []string
	seenASN := map[int]bool{}
	for _, sh := range shards {
		if seenASN[sh.ASN] {
			t.Errorf("ASN %d appears in two shards", sh.ASN)
		}
		seenASN[sh.ASN] = true
		if len(sh.Speakers) == 0 {
			t.Errorf("shard AS%d is empty", sh.ASN)
		}
		for _, host := range sh.Speakers {
			if asnOf[host] != sh.ASN {
				t.Errorf("speaker %s (AS%d) landed in shard AS%d", host, asnOf[host], sh.ASN)
			}
		}
		all = append(all, sh.Speakers...)
	}
	sort.Strings(all)
	want := eng.Speakers()
	if strings.Join(all, ",") != strings.Join(want, ",") {
		t.Errorf("shard speakers %v are not a partition of %v", all, want)
	}
	// Cut edges are eBGP-only, and cover every inter-AS adjacency that the
	// reachability of the fixture depends on.
	if len(cuts) == 0 {
		t.Fatal("no cut edges on a multi-AS fixture")
	}
	for _, pair := range cuts {
		if asnOf[pair[0]] == asnOf[pair[1]] {
			t.Errorf("cut edge %s--%s is intra-AS (AS%d)", pair[0], pair[1], asnOf[pair[0]])
		}
	}
}

// Sharded convergence must be safe against concurrent watchdog supervision
// and measurement reads: the mirror of TestWatchdogMeasureRace with the
// parallel round driver active. Run under -race.
func TestShardWatchdogMeasureRace(t *testing.T) {
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	lab.SetPerturber(routing.NewScheduledPerturber(5, []routing.PerturbRule{
		{Kind: routing.PerturbFlap, A: "as1r1", B: "as20r3", Every: 1, Recover: true},
	}))
	if res, err := lab.Reconverge(); err != nil || res.Converged {
		t.Fatalf("perturbed reconverge: res=%+v err=%v", res, err)
	}

	client := net.Measure(lab)
	loopbacks := map[string]netip.Addr{}
	for _, e := range net.Alloc.Table.Entries() {
		if e.Loopback {
			loopbacks[string(e.Node)] = e.Addr
		}
	}
	addrOf := func(name string) netip.Addr { return loopbacks[name] }
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Reads may observe a mid-supervision lab while sharded
				// rounds evaluate on the worker pool; they must never race
				// or panic.
				_, _ = client.ReachabilityMatrix(lab.VMNames(), addrOf)
				_ = lab.Verdict()
				_ = lab.TotalChurn()
				_ = lab.UnstableSpeakers(2)
				_ = lab.Events()
				_ = lab.BGPShardCount()
			}
		}()
	}

	w := &emul.Watchdog{}
	rep, err := w.Supervise(lab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Final != emul.VerdictConverged || !rep.Recovered {
		t.Fatalf("watchdog did not recover the lab:\n%s", rep.Describe())
	}
	for i := 0; i < 2; i++ {
		if rep, err = w.Supervise(lab); err != nil || rep.Escalations() != 0 {
			t.Fatalf("re-supervise: %+v, %v", rep, err)
		}
	}
	close(done)
	wg.Wait()
	if lab.Verdict() != emul.VerdictConverged {
		t.Errorf("final verdict = %s", lab.Verdict())
	}
}

// runShardDrill runs testdata/shards/drill.chaos end-to-end at the given
// shard worker count and returns the rendered report.
func runShardDrill(t *testing.T, shards int) string {
	t.Helper()
	data, err := os.ReadFile("testdata/shards/drill.chaos")
	if err != nil {
		t.Fatal(err)
	}
	report, _, _, stats := runShardScenario(t, 1, shards, false, string(data))
	if shards > 1 && stats.Counters[obs.CounterShardRoundsParallel] == 0 {
		t.Fatalf("shards=%d: parallel driver never ran", shards)
	}
	return report
}

// Golden sharded drill: a seeded perturbation scenario run at -shards 4 is
// byte-identical to -shards 1 and matches testdata/shards/drill.report
// (regenerate deliberately with UPDATE_SHARD_GOLDEN=1 go test -run
// TestGoldenShardDrill). The report header pins the structural shard count
// of the fixture, which no worker knob may change.
func TestGoldenShardDrill(t *testing.T) {
	report := runShardDrill(t, 4)
	if seq := runShardDrill(t, 1); seq != report {
		t.Fatalf("report differs between shards=4 and shards=1:\n--- 4 ---\n%s--- 1 ---\n%s", report, seq)
	}

	// Structural assertions first, so a stale golden cannot mask a broken
	// drill: the header pins the fixture's AS count, the storm climbs the
	// watchdog ladder, and the lab heals back to full reachability.
	for _, want := range []string{
		"[7 shards]",
		"recovered after 2 escalations",
		"182/182 pairs reachable",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	goldenPath := "testdata/shards/drill.report"
	if os.Getenv("UPDATE_SHARD_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if report != string(golden) {
		t.Errorf("drill report differs from golden:\n--- got ---\n%s--- want ---\n%s", report, golden)
	}
}
